//! 3C miss classification (compulsory / capacity / conflict).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BlockAddr, LruStack, StackScan};

/// Reuse class of an access with respect to a fully-associative LRU cache of a
/// given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReuseClass {
    /// First access to the block ever.
    Cold,
    /// Reuse distance (number of distinct blocks since the previous access)
    /// is strictly smaller than the capacity: a fully-associative cache of
    /// that capacity would hit.
    Near(usize),
    /// Reuse distance is at least the capacity: even a fully-associative
    /// cache would miss.
    Far,
}

/// The classical 3C classification of a cache miss.
///
/// * *Compulsory*: the block was never referenced before.
/// * *Capacity*: the block's reuse distance exceeds the cache capacity, so no
///   index function can keep it resident.
/// * *Conflict*: the miss is caused by the index function mapping too many
///   recently-used blocks to the same set — the misses the paper's
///   XOR-functions attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissClass {
    /// First-reference miss.
    Compulsory,
    /// Working set exceeds the cache capacity.
    Capacity,
    /// Mapping conflict; removable by a better index function.
    Conflict,
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MissClass::Compulsory => "compulsory",
            MissClass::Capacity => "capacity",
            MissClass::Conflict => "conflict",
        };
        f.write_str(name)
    }
}

/// Classifies the accesses of a single cache's reference stream into reuse
/// classes, mirroring the capacity/compulsory filtering of the paper's
/// profiling algorithm.
///
/// Feed *every* access (hits and misses) to [`MissClassifier::observe`]; it
/// returns the reuse class, which [`MissClassifier::classify_miss`] converts
/// to a [`MissClass`] for accesses that actually missed in the simulated cache.
///
/// # Example
///
/// ```
/// use cache_sim::{BlockAddr, MissClass, MissClassifier, ReuseClass};
///
/// let mut c = MissClassifier::new(2); // a tiny 2-block cache
/// assert_eq!(c.observe(BlockAddr(1)), ReuseClass::Cold);
/// assert_eq!(c.observe(BlockAddr(2)), ReuseClass::Cold);
/// assert_eq!(c.observe(BlockAddr(1)), ReuseClass::Near(1));
/// // Reuse distance 2 >= capacity 2: a capacity miss if the cache missed.
/// assert_eq!(c.observe(BlockAddr(3)), ReuseClass::Cold);
/// assert_eq!(c.observe(BlockAddr(2)), ReuseClass::Far);
/// assert_eq!(MissClassifier::classify_miss(ReuseClass::Far), MissClass::Capacity);
/// ```
#[derive(Debug, Clone)]
pub struct MissClassifier {
    stack: LruStack,
    capacity_blocks: usize,
}

impl MissClassifier {
    /// Creates a classifier for a cache holding `capacity_blocks` blocks.
    #[must_use]
    pub fn new(capacity_blocks: usize) -> Self {
        MissClassifier {
            stack: LruStack::new(),
            capacity_blocks,
        }
    }

    /// Capacity (in blocks) against which reuse distances are compared.
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Observes one access and returns its reuse class.
    pub fn observe(&mut self, block: BlockAddr) -> ReuseClass {
        match self.stack.access(block.as_u64(), self.capacity_blocks) {
            StackScan::Cold => ReuseClass::Cold,
            StackScan::Within { distance } if distance < self.capacity_blocks => {
                ReuseClass::Near(distance)
            }
            StackScan::Within { .. } | StackScan::Beyond => ReuseClass::Far,
        }
    }

    /// Maps the reuse class of an access that missed to its 3C class.
    #[must_use]
    pub fn classify_miss(reuse: ReuseClass) -> MissClass {
        match reuse {
            ReuseClass::Cold => MissClass::Compulsory,
            ReuseClass::Far => MissClass::Capacity,
            ReuseClass::Near(_) => MissClass::Conflict,
        }
    }

    /// Resets the classifier's history.
    pub fn reset(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_near_then_far() {
        let mut c = MissClassifier::new(3);
        assert_eq!(c.observe(BlockAddr(10)), ReuseClass::Cold);
        assert_eq!(c.observe(BlockAddr(11)), ReuseClass::Cold);
        assert_eq!(c.observe(BlockAddr(10)), ReuseClass::Near(1));
        // Push 3 distinct blocks between uses of 11 -> distance 3 >= capacity.
        assert_eq!(c.observe(BlockAddr(12)), ReuseClass::Cold);
        assert_eq!(c.observe(BlockAddr(13)), ReuseClass::Cold);
        assert_eq!(c.observe(BlockAddr(11)), ReuseClass::Far);
        assert_eq!(c.capacity_blocks(), 3);
    }

    #[test]
    fn classification_mapping() {
        assert_eq!(
            MissClassifier::classify_miss(ReuseClass::Cold),
            MissClass::Compulsory
        );
        assert_eq!(
            MissClassifier::classify_miss(ReuseClass::Far),
            MissClass::Capacity
        );
        assert_eq!(
            MissClassifier::classify_miss(ReuseClass::Near(2)),
            MissClass::Conflict
        );
    }

    #[test]
    fn reset_forgets_history() {
        let mut c = MissClassifier::new(2);
        c.observe(BlockAddr(1));
        c.reset();
        assert_eq!(c.observe(BlockAddr(1)), ReuseClass::Cold);
    }

    #[test]
    fn near_boundary_is_capacity_minus_one() {
        let mut c = MissClassifier::new(2);
        c.observe(BlockAddr(1));
        c.observe(BlockAddr(2));
        // distance 1 < 2 -> Near
        assert_eq!(c.observe(BlockAddr(1)), ReuseClass::Near(1));
        c.observe(BlockAddr(3));
        c.observe(BlockAddr(4));
        // distance 2 >= 2 -> Far (LRU FA cache of 2 blocks would miss)
        assert_eq!(c.observe(BlockAddr(1)), ReuseClass::Far);
    }

    #[test]
    fn display_names() {
        assert_eq!(MissClass::Compulsory.to_string(), "compulsory");
        assert_eq!(MissClass::Capacity.to_string(), "capacity");
        assert_eq!(MissClass::Conflict.to_string(), "conflict");
    }
}
