//! Cache geometry configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced while building or using a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A size parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Value supplied by the caller.
        value: u64,
    },
    /// The block size exceeds the cache size.
    BlockLargerThanCache {
        /// Cache size in bytes.
        size_bytes: u64,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// The associativity exceeds the number of blocks in the cache.
    AssociativityTooLarge {
        /// Requested associativity.
        associativity: u32,
        /// Number of blocks in the cache.
        blocks: u64,
    },
    /// An index function was used with a cache of a different set count.
    IndexFunctionMismatch {
        /// Set count expected by the cache.
        expected_sets: u64,
        /// Set count produced by the index function.
        actual_sets: u64,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::NotPowerOfTwo { parameter, value } => {
                write!(
                    f,
                    "{parameter} must be a non-zero power of two, got {value}"
                )
            }
            CacheError::BlockLargerThanCache {
                size_bytes,
                block_bytes,
            } => write!(
                f,
                "block size {block_bytes} B exceeds cache size {size_bytes} B"
            ),
            CacheError::AssociativityTooLarge {
                associativity,
                blocks,
            } => write!(
                f,
                "associativity {associativity} exceeds the {blocks} blocks in the cache"
            ),
            CacheError::IndexFunctionMismatch {
                expected_sets,
                actual_sets,
            } => write!(
                f,
                "index function targets {actual_sets} sets but the cache has {expected_sets}"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// Geometry of a cache: total size, block size and associativity.
///
/// All sizes must be powers of two. The derived quantities used throughout the
/// paper are available as methods: the number of sets ([`CacheConfig::num_sets`]),
/// the number of set-index bits `m` ([`CacheConfig::set_bits`]) and the number
/// of block-offset bits ([`CacheConfig::block_bits`]).
///
/// The paper's evaluation uses direct-mapped caches of 1, 4 and 16 KB with
/// 4-byte blocks; [`CacheConfig::paper_cache`] builds those directly.
///
/// # Example
///
/// ```
/// use cache_sim::CacheConfig;
///
/// let c = CacheConfig::builder()
///     .size_bytes(4096)
///     .block_bytes(4)
///     .associativity(1)
///     .build()?;
/// assert_eq!(c.num_sets(), 1024);
/// assert_eq!(c.set_bits(), 10);
/// assert_eq!(c.block_bits(), 2);
/// # Ok::<(), cache_sim::CacheError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    block_bytes: u64,
    associativity: u32,
}

impl CacheConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Builds one of the paper's evaluation caches: direct mapped, 4-byte
    /// blocks, with the given size in kilobytes (1, 4 or 16 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `size_kb` is zero or not a power of two.
    #[must_use]
    pub fn paper_cache(size_kb: u64) -> CacheConfig {
        CacheConfig::builder()
            .size_bytes(size_kb * 1024)
            .block_bytes(4)
            .associativity(1)
            .build()
            .expect("paper cache sizes are valid")
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Associativity (1 = direct mapped).
    #[must_use]
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of blocks the cache can hold.
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.num_blocks() / u64::from(self.associativity)
    }

    /// Number of set-index bits `m = log2(num_sets)`.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.num_sets().trailing_zeros() as usize
    }

    /// Number of block-offset bits.
    #[must_use]
    pub fn block_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// `true` for a direct-mapped cache.
    #[must_use]
    pub fn is_direct_mapped(&self) -> bool {
        self.associativity == 1
    }

    /// `true` when a single set spans the whole cache (fully associative).
    #[must_use]
    pub fn is_fully_associative(&self) -> bool {
        self.num_sets() == 1
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B, {}-way, {} B blocks ({} sets)",
            self.size_bytes,
            self.associativity,
            self.block_bytes,
            self.num_sets()
        )
    }
}

/// Builder for [`CacheConfig`]. Defaults: 4 KB, 4-byte blocks, direct mapped
/// (the middle configuration of the paper's sweep).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfigBuilder {
    size_bytes: u64,
    block_bytes: u64,
    associativity: u32,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder {
            size_bytes: 4096,
            block_bytes: 4,
            associativity: 1,
        }
    }
}

impl CacheConfigBuilder {
    /// Sets the total cache capacity in bytes.
    pub fn size_bytes(&mut self, bytes: u64) -> &mut Self {
        self.size_bytes = bytes;
        self
    }

    /// Sets the block (line) size in bytes.
    pub fn block_bytes(&mut self, bytes: u64) -> &mut Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the associativity (1 = direct mapped).
    pub fn associativity(&mut self, ways: u32) -> &mut Self {
        self.associativity = ways;
        self
    }

    /// Validates the parameters and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] when a parameter is not a power of two, the
    /// block is larger than the cache, or the associativity exceeds the number
    /// of blocks.
    pub fn build(&self) -> Result<CacheConfig, CacheError> {
        for (name, value) in [
            ("cache size", self.size_bytes),
            ("block size", self.block_bytes),
            ("associativity", u64::from(self.associativity)),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(CacheError::NotPowerOfTwo {
                    parameter: name,
                    value,
                });
            }
        }
        if self.block_bytes > self.size_bytes {
            return Err(CacheError::BlockLargerThanCache {
                size_bytes: self.size_bytes,
                block_bytes: self.block_bytes,
            });
        }
        let blocks = self.size_bytes / self.block_bytes;
        if u64::from(self.associativity) > blocks {
            return Err(CacheError::AssociativityTooLarge {
                associativity: self.associativity,
                blocks,
            });
        }
        Ok(CacheConfig {
            size_bytes: self.size_bytes,
            block_bytes: self.block_bytes,
            associativity: self.associativity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_caches_have_expected_geometry() {
        // Table 1: n = 16, 4-byte blocks; m = 8, 10, 12 for 1, 4, 16 KB.
        for (kb, m) in [(1u64, 8usize), (4, 10), (16, 12)] {
            let c = CacheConfig::paper_cache(kb);
            assert_eq!(c.set_bits(), m, "{kb} KB cache");
            assert_eq!(c.block_bits(), 2);
            assert!(c.is_direct_mapped());
            assert_eq!(c.num_blocks(), kb * 256);
        }
    }

    #[test]
    fn builder_defaults_are_the_4kb_paper_cache() {
        let c = CacheConfig::builder().build().unwrap();
        assert_eq!(c, CacheConfig::paper_cache(4));
    }

    #[test]
    fn set_associative_geometry() {
        let c = CacheConfig::builder()
            .size_bytes(8192)
            .block_bytes(32)
            .associativity(4)
            .build()
            .unwrap();
        assert_eq!(c.num_blocks(), 256);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.set_bits(), 6);
        assert_eq!(c.block_bits(), 5);
        assert!(!c.is_direct_mapped());
        assert!(!c.is_fully_associative());
    }

    #[test]
    fn fully_associative_detection() {
        let c = CacheConfig::builder()
            .size_bytes(1024)
            .block_bytes(4)
            .associativity(256)
            .build()
            .unwrap();
        assert!(c.is_fully_associative());
        assert_eq!(c.set_bits(), 0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            CacheConfig::builder().size_bytes(3000).build(),
            Err(CacheError::NotPowerOfTwo {
                parameter: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder().block_bytes(0).build(),
            Err(CacheError::NotPowerOfTwo {
                parameter: "block size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder()
                .size_bytes(64)
                .block_bytes(128)
                .build(),
            Err(CacheError::BlockLargerThanCache { .. })
        ));
        assert!(matches!(
            CacheConfig::builder()
                .size_bytes(64)
                .block_bytes(16)
                .associativity(8)
                .build(),
            Err(CacheError::AssociativityTooLarge { .. })
        ));
    }

    #[test]
    fn error_and_config_display() {
        let c = CacheConfig::paper_cache(1);
        assert!(c.to_string().contains("1024"));
        let e = CacheError::NotPowerOfTwo {
            parameter: "cache size",
            value: 3,
        };
        assert!(e.to_string().contains("power of two"));
    }
}
