//! Trace-driven cache simulation with pluggable index functions.
//!
//! This crate provides the cache-model substrate for the XOR-indexing study:
//!
//! * [`CacheConfig`] — parameters of a cache (size, block size, associativity)
//!   with the derived geometry (sets, index bits, offset bits);
//! * [`IndexFunction`] — how a block address is mapped to a set: conventional
//!   modulo indexing ([`ModuloIndex`]), arbitrary bit selection
//!   ([`BitSelectIndex`]), XOR/matrix indexing ([`XorIndex`]) and per-way
//!   skewing ([`skewed::SkewedCache`]);
//! * [`Cache`] — a set-associative cache simulator with LRU/FIFO/random
//!   replacement and full hit/miss accounting, including 3C miss
//!   classification (compulsory / capacity / conflict);
//! * [`FullyAssociativeCache`] — the fully-associative LRU reference used by
//!   the paper's Table 3 (`FA` column);
//! * [`LruStack`] — the stack-distance structure shared by the classifier and
//!   by the conflict-vector profiler in the `xorindex` crate;
//! * [`CacheStats`] — counters and the `misses / K-uop` metric reported in the
//!   paper's tables;
//! * [`ReuseStream`] / [`CompactSets`] — the function-independent 3C
//!   pre-classification and allocation-free LRU tag arrays backing the fast
//!   replay engine in the `xorindex-verify` crate.
//!
//! # Example
//!
//! ```
//! use cache_sim::{Cache, CacheConfig, ModuloIndex, AccessOutcome};
//!
//! let config = CacheConfig::builder()
//!     .size_bytes(1024)
//!     .block_bytes(4)
//!     .associativity(1)
//!     .build()?;
//! let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
//!
//! // Two addresses 1024 bytes apart collide in a 1 KB direct-mapped cache.
//! assert_eq!(cache.access_addr(0x0000), AccessOutcome::Miss);
//! assert_eq!(cache.access_addr(0x0400), AccessOutcome::Miss);
//! assert_eq!(cache.access_addr(0x0000), AccessOutcome::Miss); // evicted: conflict
//! assert_eq!(cache.stats().misses, 3);
//! # Ok::<(), cache_sim::CacheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod classify;
mod compact;
mod config;
mod fully_assoc;
mod lru_stack;
mod preclass;
mod replacement;
mod stats;

pub mod hierarchy;
pub mod index;
pub mod skewed;

pub use addr::{Address, BlockAddr};
pub use cache::{AccessOutcome, Cache};
pub use classify::{MissClass, MissClassifier, ReuseClass};
pub use compact::{CompactAccess, CompactSets, COMPACT_MAX_WAYS};
pub use config::{CacheConfig, CacheConfigBuilder, CacheError};
pub use fully_assoc::FullyAssociativeCache;
pub use index::{BitSelectIndex, IndexFunction, ModuloIndex, XorIndex};
pub use lru_stack::{LruStack, StackScan};
pub use preclass::ReuseStream;
pub use replacement::ReplacementPolicy;
pub use stats::CacheStats;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheConfig>();
        assert_send_sync::<Cache>();
        assert_send_sync::<CacheStats>();
        assert_send_sync::<FullyAssociativeCache>();
        assert_send_sync::<LruStack>();
        assert_send_sync::<XorIndex>();
        assert_send_sync::<ReuseStream>();
        assert_send_sync::<CompactSets>();
    }
}
