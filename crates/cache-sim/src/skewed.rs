//! Skewed-associative cache (Seznec & Bodin).
//!
//! The paper's related-work section contrasts application-specific XOR
//! indexing with the skewed-associative cache, which uses a *different* hash
//! function per way so that blocks conflicting in one way rarely conflict in
//! the others. This module provides a small skewed-associative simulator so
//! the experiment harness can include it as an additional baseline.

use crate::{Address, BlockAddr, CacheStats, XorIndex};

/// A skewed-associative cache: `w` direct-mapped banks, each indexed by its
/// own XOR function, with LRU replacement among the banks.
///
/// # Example
///
/// ```
/// use cache_sim::skewed::SkewedCache;
/// use cache_sim::XorIndex;
/// use gf2::BitMatrix;
///
/// // Two banks of 128 blocks with different skewing functions.
/// let f0 = XorIndex::new(BitMatrix::from_fn(16, 7, |r, c| r == c || r == c + 7));
/// let f1 = XorIndex::new(BitMatrix::from_fn(16, 7, |r, c| r == c || r == c + 8));
/// let mut cache = SkewedCache::new(vec![f0, f1], 2);
/// cache.access_addr(0x0000);
/// cache.access_addr(0x0200);
/// assert!(cache.access_addr(0x0000).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SkewedCache {
    /// One index function per bank.
    functions: Vec<XorIndex>,
    /// `banks[w][set]` = resident block and the timestamp of its last use.
    banks: Vec<Vec<Option<(u64, u64)>>>,
    block_bits: u32,
    clock: u64,
    stats: CacheStats,
}

impl SkewedCache {
    /// Creates a skewed cache with one direct-mapped bank per index function.
    ///
    /// All functions must target the same number of sets (the bank size).
    ///
    /// # Panics
    ///
    /// Panics if `functions` is empty or the functions disagree on the number
    /// of sets.
    #[must_use]
    pub fn new(functions: Vec<XorIndex>, block_bits: u32) -> Self {
        assert!(!functions.is_empty(), "at least one bank is required");
        let sets = {
            use crate::IndexFunction as _;
            functions[0].num_sets()
        };
        {
            use crate::IndexFunction as _;
            assert!(
                functions.iter().all(|f| f.num_sets() == sets),
                "all banks must have the same number of sets"
            );
        }
        let banks = functions
            .iter()
            .map(|_| vec![None; sets as usize])
            .collect();
        SkewedCache {
            functions,
            banks,
            block_bits,
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// Number of banks (ways).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.functions.len()
    }

    /// Total capacity in blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.banks.iter().map(Vec::len).sum()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses a byte address.
    pub fn access_addr<A: Into<Address>>(&mut self, addr: A) -> crate::AccessOutcome {
        let block = addr.into().block(self.block_bits);
        self.access_block(block)
    }

    /// Accesses a block address.
    pub fn access_block(&mut self, block: BlockAddr) -> crate::AccessOutcome {
        use crate::IndexFunction as _;
        self.clock += 1;
        let raw = block.as_u64();
        let indices: Vec<usize> = self
            .functions
            .iter()
            .map(|f| f.set_index(block) as usize)
            .collect();
        // Hit check across all banks.
        for (w, &set) in indices.iter().enumerate() {
            if let Some((resident, last_use)) = &mut self.banks[w][set] {
                if *resident == raw {
                    *last_use = self.clock;
                    self.stats.record_hit();
                    return crate::AccessOutcome::Hit;
                }
            }
        }
        // Miss: fill an empty candidate frame, or evict the LRU candidate.
        let mut victim_way = 0usize;
        let mut victim_time = u64::MAX;
        let mut evicted = true;
        for (w, &set) in indices.iter().enumerate() {
            match &self.banks[w][set] {
                None => {
                    victim_way = w;
                    evicted = false;
                    break;
                }
                Some((_, last_use)) => {
                    if *last_use < victim_time {
                        victim_time = *last_use;
                        victim_way = w;
                    }
                }
            }
        }
        self.banks[victim_way][indices[victim_way]] = Some((raw, self.clock));
        self.stats.record_miss(None, evicted);
        crate::AccessOutcome::Miss
    }

    /// Runs a block trace through the cache, returning the cumulative stats.
    pub fn simulate_blocks<I: IntoIterator<Item = BlockAddr>>(&mut self, blocks: I) -> CacheStats {
        for b in blocks {
            self.access_block(b);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::BitMatrix;

    fn two_way() -> SkewedCache {
        let f0 = XorIndex::new(BitMatrix::from_fn(16, 7, |r, c| r == c || r == c + 7));
        let f1 = XorIndex::new(BitMatrix::from_fn(16, 7, |r, c| r == c || r == c + 8));
        SkewedCache::new(vec![f0, f1], 2)
    }

    #[test]
    fn geometry() {
        let c = two_way();
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity_blocks(), 256);
    }

    #[test]
    fn hits_after_fill() {
        let mut c = two_way();
        assert!(c.access_block(BlockAddr(10)).is_miss());
        assert!(c.access_block(BlockAddr(10)).is_hit());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn skewing_breaks_pathological_modulo_conflicts() {
        let mut c = two_way();
        // Blocks that share low-order bits (would all conflict in a modulo
        // direct-mapped bank of 128 sets).
        let conflicting: Vec<BlockAddr> = (0..2).map(|i| BlockAddr(i * 128)).collect();
        for &b in &conflicting {
            c.access_block(b);
        }
        // Both blocks can be resident simultaneously thanks to the two banks.
        let mut hits = 0;
        for &b in &conflicting {
            if c.access_block(b).is_hit() {
                hits += 1;
            }
        }
        assert_eq!(hits, 2);
    }

    #[test]
    fn lru_among_banks_evicts_oldest() {
        let f0 = XorIndex::new(BitMatrix::modulo_index(16, 2));
        let f1 = XorIndex::new(BitMatrix::from_fn(16, 2, |r, c| r == c || r == c + 2));
        let mut c = SkewedCache::new(vec![f0, f1], 2);
        // Fill both candidate frames of block 0's sets, then force an eviction.
        c.access_block(BlockAddr(0));
        c.access_block(BlockAddr(4)); // same modulo set as 0 in bank 0
        c.access_block(BlockAddr(8));
        assert!(c.stats().evictions > 0 || c.stats().misses == 3);
    }

    #[test]
    #[should_panic(expected = "same number of sets")]
    fn mismatched_banks_are_rejected() {
        let f0 = XorIndex::new(BitMatrix::modulo_index(16, 2));
        let f1 = XorIndex::new(BitMatrix::modulo_index(16, 3));
        let _ = SkewedCache::new(vec![f0, f1], 2);
    }
}
