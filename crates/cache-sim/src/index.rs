//! Set-index functions: how a block address chooses a cache set.

use std::fmt;

use gf2::{BitMatrix, BitVec};

use crate::{BlockAddr, CacheConfig};

/// Maps a cache-block address to a set index.
///
/// Implementations must be pure functions of the block address: the simulator
/// calls them once per access. The classic choices are provided:
/// [`ModuloIndex`] (the conventional power-of-two indexing), [`BitSelectIndex`]
/// (an arbitrary selection of address bits, as in Patel et al. and Givargis)
/// and [`XorIndex`] (a GF(2) matrix, the subject of the paper).
pub trait IndexFunction: Send + Sync + fmt::Debug {
    /// The set index for `block`, in `0..num_sets()`.
    fn set_index(&self, block: BlockAddr) -> u64;

    /// Number of sets this function targets (`2^m`).
    fn num_sets(&self) -> u64;

    /// Number of set-index bits `m`.
    fn set_bits(&self) -> usize {
        self.num_sets().trailing_zeros() as usize
    }

    /// Short human-readable description used in reports.
    fn describe(&self) -> String;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn IndexFunction>;
}

impl Clone for Box<dyn IndexFunction> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The conventional modulo-`2^m` index function: the `m` low-order bits of the
/// block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuloIndex {
    set_bits: usize,
}

impl ModuloIndex {
    /// Creates a modulo index over `set_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `set_bits > 63`.
    #[must_use]
    pub fn new(set_bits: usize) -> Self {
        assert!(set_bits <= 63, "set_bits {set_bits} out of range");
        ModuloIndex { set_bits }
    }

    /// The modulo index matching a cache configuration.
    #[must_use]
    pub fn for_config(config: &CacheConfig) -> Self {
        Self::new(config.set_bits())
    }
}

impl IndexFunction for ModuloIndex {
    fn set_index(&self, block: BlockAddr) -> u64 {
        block.as_u64() & ((1u64 << self.set_bits) - 1)
    }

    fn num_sets(&self) -> u64 {
        1u64 << self.set_bits
    }

    fn describe(&self) -> String {
        format!("modulo-2^{}", self.set_bits)
    }

    fn clone_box(&self) -> Box<dyn IndexFunction> {
        Box::new(*self)
    }
}

/// A bit-selecting index function: set-index bit `c` is address bit
/// `selected[c]` of the block address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSelectIndex {
    selected: Vec<usize>,
}

impl BitSelectIndex {
    /// Creates a bit-selecting function from the chosen block-address bits.
    ///
    /// # Panics
    ///
    /// Panics if `selected` is empty, longer than 63, or contains duplicate or
    /// out-of-range (≥ 64) bit positions.
    #[must_use]
    pub fn new(selected: Vec<usize>) -> Self {
        assert!(
            !selected.is_empty() && selected.len() <= 63,
            "1..=63 bits must be selected"
        );
        let mut seen = [false; 64];
        for &b in &selected {
            assert!(b < 64, "selected bit {b} out of range");
            assert!(!seen[b], "bit {b} selected twice");
            seen[b] = true;
        }
        BitSelectIndex { selected }
    }

    /// The bits selected, in set-index bit order.
    #[must_use]
    pub fn selected_bits(&self) -> &[usize] {
        &self.selected
    }

    /// The equivalent hash-function matrix over `hashed_bits` address bits.
    ///
    /// # Panics
    ///
    /// Panics if a selected bit is `>= hashed_bits`.
    #[must_use]
    pub fn to_matrix(&self, hashed_bits: usize) -> BitMatrix {
        BitMatrix::bit_selection(hashed_bits, &self.selected)
    }
}

impl IndexFunction for BitSelectIndex {
    fn set_index(&self, block: BlockAddr) -> u64 {
        let a = block.as_u64();
        let mut s = 0u64;
        for (c, &b) in self.selected.iter().enumerate() {
            s |= ((a >> b) & 1) << c;
        }
        s
    }

    fn num_sets(&self) -> u64 {
        1u64 << self.selected.len()
    }

    fn describe(&self) -> String {
        format!("bit-select{:?}", self.selected)
    }

    fn clone_box(&self) -> Box<dyn IndexFunction> {
        Box::new(self.clone())
    }
}

/// A XOR (matrix) index function: the set index is `a · H` over GF(2), where
/// `a` is the low `n` bits of the block address and `H` is an `n × m`
/// full-column-rank matrix.
///
/// Block-address bits above the hashed width do not influence the set index —
/// exactly like the paper, where the `N − n` high-order address bits feed only
/// the tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorIndex {
    matrix: BitMatrix,
}

impl XorIndex {
    /// Creates a XOR index function from a hash-function matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not have full column rank (it would leave
    /// some cache sets unreachable).
    #[must_use]
    pub fn new(matrix: BitMatrix) -> Self {
        assert!(
            matrix.has_full_column_rank(),
            "hash-function matrix must have full column rank"
        );
        XorIndex { matrix }
    }

    /// Fallible constructor: returns `None` when the matrix is rank deficient.
    #[must_use]
    pub fn from_matrix(matrix: BitMatrix) -> Option<Self> {
        matrix.has_full_column_rank().then_some(XorIndex { matrix })
    }

    /// The conventional modulo function expressed as a XOR index over
    /// `hashed_bits` address bits — the starting point of the paper's search.
    ///
    /// # Panics
    ///
    /// Panics if the cache has more set bits than `hashed_bits`.
    #[must_use]
    pub fn conventional(config: &CacheConfig, hashed_bits: usize) -> Self {
        XorIndex::new(BitMatrix::modulo_index(hashed_bits, config.set_bits()))
    }

    /// The underlying hash-function matrix.
    #[must_use]
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Number of hashed address bits `n`.
    #[must_use]
    pub fn hashed_bits(&self) -> usize {
        self.matrix.n_rows()
    }

    /// `true` when the matrix is in permutation-based form (identity low rows),
    /// in which case the conventional tag (high `N − m` address bits) remains
    /// correct (paper Section 4).
    #[must_use]
    pub fn is_permutation_based(&self) -> bool {
        self.matrix.is_permutation_based()
    }

    /// Widest XOR gate needed to implement this function (max column weight).
    #[must_use]
    pub fn max_xor_inputs(&self) -> usize {
        self.matrix.max_column_weight()
    }

    /// The set index as a GF(2) vector, for callers that need the bits.
    #[must_use]
    pub fn set_index_bits(&self, block: BlockAddr) -> BitVec {
        self.matrix.mul_vec(block.hashed_bits(self.matrix.n_rows()))
    }
}

impl IndexFunction for XorIndex {
    fn set_index(&self, block: BlockAddr) -> u64 {
        self.set_index_bits(block).as_u64()
    }

    fn num_sets(&self) -> u64 {
        1u64 << self.matrix.n_cols()
    }

    fn describe(&self) -> String {
        format!(
            "xor {}x{}{}",
            self.matrix.n_rows(),
            self.matrix.n_cols(),
            if self.is_permutation_based() {
                " (permutation-based)"
            } else {
                ""
            }
        )
    }

    fn clone_box(&self) -> Box<dyn IndexFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_index_takes_low_bits() {
        let f = ModuloIndex::new(4);
        assert_eq!(f.num_sets(), 16);
        assert_eq!(f.set_bits(), 4);
        assert_eq!(f.set_index(BlockAddr(0x123)), 0x3);
        assert_eq!(f.set_index(BlockAddr(0xFF0)), 0x0);
        assert!(f.describe().contains("modulo"));
    }

    #[test]
    fn modulo_for_config_matches_geometry() {
        let c = CacheConfig::paper_cache(4);
        let f = ModuloIndex::for_config(&c);
        assert_eq!(f.num_sets(), c.num_sets());
    }

    #[test]
    fn bit_select_extracts_chosen_bits() {
        let f = BitSelectIndex::new(vec![2, 5, 7]);
        assert_eq!(f.num_sets(), 8);
        // block 0b1010_0100: bit2=1, bit5=1, bit7=1 -> 0b111
        assert_eq!(f.set_index(BlockAddr(0b1010_0100)), 0b111);
        // block 0b0101_1011: bit2=0, bit5=0, bit7=0 -> 0
        assert_eq!(f.set_index(BlockAddr(0b0101_1011)), 0b000);
        assert_eq!(f.selected_bits(), &[2, 5, 7]);
    }

    #[test]
    fn bit_select_matches_its_matrix_form() {
        let f = BitSelectIndex::new(vec![0, 3, 6, 9]);
        let m = f.to_matrix(12);
        for a in (0..4096u64).step_by(7) {
            let block = BlockAddr(a);
            assert_eq!(
                f.set_index(block),
                m.mul_vec(BitVec::from_u64(a, 12)).as_u64()
            );
        }
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn bit_select_rejects_duplicates() {
        let _ = BitSelectIndex::new(vec![1, 1]);
    }

    #[test]
    fn xor_index_matches_matrix_product() {
        // s0 = a0 ^ a4, s1 = a1 ^ a5 (permutation-based 2-input function).
        let m = BitMatrix::from_fn(8, 2, |r, c| r == c || r == c + 4);
        let f = XorIndex::new(m.clone());
        assert!(f.is_permutation_based());
        assert_eq!(f.max_xor_inputs(), 2);
        assert_eq!(f.hashed_bits(), 8);
        for a in 0..256u64 {
            let expect = m.mul_vec(BitVec::from_u64(a, 8)).as_u64();
            assert_eq!(f.set_index(BlockAddr(a)), expect);
        }
    }

    #[test]
    fn xor_index_ignores_bits_above_hashed_width() {
        let f = XorIndex::conventional(&CacheConfig::paper_cache(1), 16);
        let low = f.set_index(BlockAddr(0x00001234));
        let high = f.set_index(BlockAddr(0xABCD1234));
        assert_eq!(low, high);
    }

    #[test]
    fn xor_index_rejects_rank_deficient_matrices() {
        let singular = BitMatrix::zero(8, 2);
        assert!(XorIndex::from_matrix(singular.clone()).is_none());
        let ok = BitMatrix::modulo_index(8, 2);
        assert!(XorIndex::from_matrix(ok).is_some());
        let result = std::panic::catch_unwind(|| XorIndex::new(singular));
        assert!(result.is_err());
    }

    #[test]
    fn conventional_xor_equals_modulo() {
        let config = CacheConfig::paper_cache(1);
        let xor = XorIndex::conventional(&config, 16);
        let modulo = ModuloIndex::for_config(&config);
        for a in (0..65536u64).step_by(97) {
            assert_eq!(xor.set_index(BlockAddr(a)), modulo.set_index(BlockAddr(a)));
        }
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let f: Box<dyn IndexFunction> = Box::new(BitSelectIndex::new(vec![1, 4]));
        let g = f.clone();
        for a in 0..64 {
            assert_eq!(f.set_index(BlockAddr(a)), g.set_index(BlockAddr(a)));
        }
        assert_eq!(f.num_sets(), g.num_sets());
    }
}
