//! Shared 3C pre-classification of a block-address trace.
//!
//! The reuse class of an access (cold / near / far with respect to a
//! fully-associative LRU cache of the simulated capacity) depends only on the
//! trace and the cache geometry — *not* on the index function. The classical
//! consequence, which the paper's verification step leans on, is that
//! compulsory and capacity misses are index-function-independent: only
//! conflict behaviour changes per candidate function.
//!
//! [`ReuseStream`] exploits that by running the [`MissClassifier`]'s
//! HashMap-heavy LRU-stack walk **once** per (trace, geometry) and recording
//! one compact reuse-class code per access. Replaying `k` candidate index
//! functions then pays the stack walk once instead of `k` times; each replay
//! only needs the per-access code to turn its own misses into 3C classes.

use crate::{BlockAddr, MissClass, MissClassifier, ReuseClass};

/// Compact per-access reuse code: first touch of the block.
const CODE_COLD: u8 = 0;
/// Reuse distance below capacity — a miss on this access is a conflict miss.
const CODE_NEAR: u8 = 1;
/// Reuse distance at or beyond capacity — a miss here is a capacity miss.
const CODE_FAR: u8 = 2;

/// A function-independent reuse-class stream for one (trace, geometry) pair.
///
/// Built by a single [`MissClassifier`] pass; one byte per access. The stream
/// answers, for access `i`, "if a cache of this capacity misses here, what 3C
/// class is the miss?" — exactly the information `Cache::access_block` derives
/// per access when classification is enabled.
///
/// # Example
///
/// ```
/// use cache_sim::{BlockAddr, MissClass, ReuseStream};
///
/// let trace = [BlockAddr(1), BlockAddr(2), BlockAddr(1)];
/// let stream = ReuseStream::build(&trace, 2);
/// assert_eq!(stream.len(), 3);
/// assert_eq!(stream.miss_class(0), MissClass::Compulsory);
/// assert_eq!(stream.miss_class(2), MissClass::Conflict); // distance 1 < 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseStream {
    codes: Vec<u8>,
    capacity_blocks: usize,
}

impl ReuseStream {
    /// Classifies every access of `trace` against a fully-associative LRU
    /// cache holding `capacity_blocks` blocks.
    #[must_use]
    pub fn build(trace: &[BlockAddr], capacity_blocks: usize) -> Self {
        let mut classifier = MissClassifier::new(capacity_blocks);
        let codes = trace
            .iter()
            .map(|&block| match classifier.observe(block) {
                ReuseClass::Cold => CODE_COLD,
                ReuseClass::Near(_) => CODE_NEAR,
                ReuseClass::Far => CODE_FAR,
            })
            .collect();
        ReuseStream {
            codes,
            capacity_blocks,
        }
    }

    /// Number of accesses classified.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the stream covers no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Capacity (in blocks) the reuse distances were compared against.
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// 3C class of access `i` *if it misses* in the simulated cache.
    ///
    /// Matches `MissClassifier::classify_miss(observe(trace[i]))`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn miss_class(&self, i: usize) -> MissClass {
        match self.codes[i] {
            CODE_COLD => MissClass::Compulsory,
            CODE_NEAR => MissClass::Conflict,
            _ => MissClass::Capacity,
        }
    }

    /// Number of accesses whose miss (if any) would be conflict-eligible.
    #[must_use]
    pub fn conflict_eligible(&self) -> usize {
        self.codes.iter().filter(|&&c| c == CODE_NEAR).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ids: &[u64]) -> Vec<BlockAddr> {
        ids.iter().copied().map(BlockAddr).collect()
    }

    #[test]
    fn matches_the_classifier_access_by_access() {
        let trace = blocks(&[1, 2, 3, 1, 2, 4, 1, 5, 5, 2]);
        for capacity in [1usize, 2, 3, 8] {
            let stream = ReuseStream::build(&trace, capacity);
            let mut classifier = MissClassifier::new(capacity);
            for (i, &b) in trace.iter().enumerate() {
                let reuse = classifier.observe(b);
                assert_eq!(
                    stream.miss_class(i),
                    MissClassifier::classify_miss(reuse),
                    "access {i} capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn cold_near_far_codes() {
        let trace = blocks(&[7, 8, 7, 9, 10, 8]);
        let stream = ReuseStream::build(&trace, 2);
        assert_eq!(stream.miss_class(0), MissClass::Compulsory);
        assert_eq!(stream.miss_class(2), MissClass::Conflict); // distance 1
        assert_eq!(stream.miss_class(5), MissClass::Capacity); // distance 3
        assert_eq!(stream.capacity_blocks(), 2);
        assert_eq!(stream.len(), 6);
        assert!(!stream.is_empty());
        assert_eq!(stream.conflict_eligible(), 1);
    }

    #[test]
    fn empty_trace() {
        let stream = ReuseStream::build(&[], 4);
        assert!(stream.is_empty());
        assert_eq!(stream.len(), 0);
    }
}
