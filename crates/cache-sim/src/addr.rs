//! Address newtypes.

use std::fmt;

use serde::{Deserialize, Serialize};

use gf2::BitVec;

/// A byte address as issued by a program (load/store effective address or
/// instruction fetch address).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Address(pub u64);

impl Address {
    /// Converts to the containing cache-block address given the block size.
    #[must_use]
    pub fn block(self, block_bits: u32) -> BlockAddr {
        BlockAddr(self.0 >> block_bits)
    }

    /// Byte offset within the cache block.
    #[must_use]
    pub fn offset(self, block_bits: u32) -> u64 {
        self.0 & ((1u64 << block_bits) - 1)
    }

    /// Raw byte address.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for Address {
    fn from(a: u64) -> Self {
        Address(a)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block address: the byte address with the block-offset bits removed.
///
/// This is the quantity hashed by the index function; the paper calls it the
/// *block address* `a` and hashes its `n` low-order bits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Raw block number.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The first byte address of the block.
    #[must_use]
    pub fn base_address(self, block_bits: u32) -> Address {
        Address(self.0 << block_bits)
    }

    /// The `n` low-order bits of the block address as a GF(2) vector — the
    /// input to a hash-function matrix.
    ///
    /// # Panics
    ///
    /// Panics if `hashed_bits` is 0 or larger than 64.
    #[must_use]
    pub fn hashed_bits(self, hashed_bits: usize) -> BitVec {
        BitVec::from_u64(self.0, hashed_bits)
    }
}

impl From<u64> for BlockAddr {
    fn from(a: u64) -> Self {
        BlockAddr(a)
    }
}

impl From<BlockAddr> for u64 {
    fn from(a: BlockAddr) -> Self {
        a.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_to_block_strips_offset() {
        let a = Address(0x1237);
        assert_eq!(a.block(2), BlockAddr(0x48D));
        assert_eq!(a.offset(2), 0x3);
        assert_eq!(a.block(5), BlockAddr(0x91));
        assert_eq!(a.offset(5), 0x17);
    }

    #[test]
    fn block_base_address_roundtrip() {
        let b = BlockAddr(0x91);
        assert_eq!(b.base_address(5), Address(0x1220));
        assert_eq!(b.base_address(5).block(5), b);
    }

    #[test]
    fn hashed_bits_truncate() {
        let b = BlockAddr(0x12345);
        assert_eq!(b.hashed_bits(16).as_u64(), 0x2345);
        assert_eq!(b.hashed_bits(20).as_u64(), 0x12345);
    }

    #[test]
    fn conversions_and_display() {
        let a: Address = 0x40u64.into();
        assert_eq!(u64::from(a), 0x40);
        assert_eq!(a.to_string(), "0x40");
        let b: BlockAddr = 7u64.into();
        assert_eq!(u64::from(b), 7);
        assert!(b.to_string().contains("0x7"));
    }
}
