//! Split L1 instruction/data cache pair.
//!
//! The paper evaluates instruction caches and data caches separately (both
//! halves of Table 2). This module bundles two [`Cache`] instances so a whole
//! interleaved trace can be replayed in one pass.

use crate::{Address, BlockAddr, Cache, CacheStats};

/// Which side of a split L1 an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Instruction fetch.
    Instruction,
    /// Data load or store.
    Data,
}

/// A split L1: one instruction cache and one data cache, each with its own
/// (possibly different) index function.
#[derive(Debug, Clone)]
pub struct SplitL1 {
    icache: Cache,
    dcache: Cache,
}

impl SplitL1 {
    /// Creates a split L1 from two caches.
    #[must_use]
    pub fn new(icache: Cache, dcache: Cache) -> Self {
        SplitL1 { icache, dcache }
    }

    /// The instruction cache.
    #[must_use]
    pub fn instruction_cache(&self) -> &Cache {
        &self.icache
    }

    /// The data cache.
    #[must_use]
    pub fn data_cache(&self) -> &Cache {
        &self.dcache
    }

    /// Accesses one side with a byte address.
    pub fn access_addr<A: Into<Address>>(&mut self, side: Side, addr: A) -> crate::AccessOutcome {
        match side {
            Side::Instruction => self.icache.access_addr(addr),
            Side::Data => self.dcache.access_addr(addr),
        }
    }

    /// Accesses one side with a block address.
    pub fn access_block(&mut self, side: Side, block: BlockAddr) -> crate::AccessOutcome {
        match side {
            Side::Instruction => self.icache.access_block(block),
            Side::Data => self.dcache.access_block(block),
        }
    }

    /// Statistics of the chosen side.
    #[must_use]
    pub fn stats(&self, side: Side) -> &CacheStats {
        match side {
            Side::Instruction => self.icache.stats(),
            Side::Data => self.dcache.stats(),
        }
    }

    /// Combined statistics of both sides.
    #[must_use]
    pub fn combined_stats(&self) -> CacheStats {
        *self.icache.stats() + *self.dcache.stats()
    }

    /// Resets both sides.
    pub fn reset(&mut self) {
        self.icache.reset();
        self.dcache.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, ModuloIndex};

    fn split() -> SplitL1 {
        let config = CacheConfig::paper_cache(1);
        SplitL1::new(
            Cache::new(config, ModuloIndex::for_config(&config)),
            Cache::new(config, ModuloIndex::for_config(&config)),
        )
    }

    #[test]
    fn sides_are_independent() {
        let mut l1 = split();
        l1.access_addr(Side::Instruction, 0x1000u64);
        l1.access_addr(Side::Data, 0x1000u64);
        assert_eq!(l1.stats(Side::Instruction).accesses, 1);
        assert_eq!(l1.stats(Side::Data).accesses, 1);
        // The instruction access did not warm the data cache.
        assert_eq!(l1.stats(Side::Data).misses, 1);
        assert_eq!(l1.combined_stats().accesses, 2);
    }

    #[test]
    fn block_access_and_reset() {
        let mut l1 = split();
        assert!(l1.access_block(Side::Data, BlockAddr(5)).is_miss());
        assert!(l1.access_block(Side::Data, BlockAddr(5)).is_hit());
        l1.reset();
        assert_eq!(l1.stats(Side::Data).accesses, 0);
        assert!(l1.access_block(Side::Data, BlockAddr(5)).is_miss());
        assert!(l1.instruction_cache().stats().accesses == 0);
        assert!(l1.data_cache().stats().accesses == 1);
    }
}
