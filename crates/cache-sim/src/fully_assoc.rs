//! Fully-associative LRU reference cache.

use crate::{Address, BlockAddr, CacheStats, LruStack, MissClass, StackScan};

/// A fully-associative cache with true LRU replacement.
///
/// This is the `FA` reference point of the paper's Table 3: it has no conflict
/// misses at all, so comparing an index function against it shows how much of
/// the conflict-miss headroom the function recovers. Interestingly, the paper
/// observes that optimized XOR functions sometimes *beat* full associativity
/// because LRU replacement is itself sub-optimal; this simulator reproduces
/// that effect.
///
/// # Example
///
/// ```
/// use cache_sim::FullyAssociativeCache;
///
/// let mut fa = FullyAssociativeCache::new(256, 2); // 256 blocks of 4 bytes = 1 KB
/// fa.access_addr(0x0000);
/// fa.access_addr(0x0400);
/// assert!(fa.access_addr(0x0000).is_hit()); // no conflict misses, ever
/// ```
#[derive(Debug, Clone)]
pub struct FullyAssociativeCache {
    stack: LruStack,
    capacity_blocks: usize,
    block_bits: u32,
    stats: CacheStats,
}

impl FullyAssociativeCache {
    /// Creates a fully-associative cache holding `capacity_blocks` blocks of
    /// `2^block_bits` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    #[must_use]
    pub fn new(capacity_blocks: usize, block_bits: u32) -> Self {
        assert!(capacity_blocks > 0, "capacity must be at least one block");
        FullyAssociativeCache {
            stack: LruStack::new(),
            capacity_blocks,
            block_bits,
            stats: CacheStats::new(),
        }
    }

    /// Creates the fully-associative equivalent of a [`crate::CacheConfig`].
    #[must_use]
    pub fn for_config(config: &crate::CacheConfig) -> Self {
        Self::new(config.num_blocks() as usize, config.block_bits())
    }

    /// Capacity in blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses a byte address.
    pub fn access_addr<A: Into<Address>>(&mut self, addr: A) -> crate::AccessOutcome {
        let block = addr.into().block(self.block_bits);
        self.access_block(block)
    }

    /// Accesses a block address.
    pub fn access_block(&mut self, block: BlockAddr) -> crate::AccessOutcome {
        match self.stack.access(block.as_u64(), self.capacity_blocks) {
            StackScan::Within { distance } if distance < self.capacity_blocks => {
                self.stats.record_hit();
                crate::AccessOutcome::Hit
            }
            StackScan::Cold => {
                self.stats.record_miss(Some(MissClass::Compulsory), false);
                crate::AccessOutcome::Miss
            }
            _ => {
                self.stats.record_miss(Some(MissClass::Capacity), true);
                crate::AccessOutcome::Miss
            }
        }
    }

    /// Runs a block trace through the cache, returning the statistics for the
    /// whole run so far.
    pub fn simulate_blocks<I: IntoIterator<Item = BlockAddr>>(&mut self, blocks: I) -> CacheStats {
        for b in blocks {
            self.access_block(b);
        }
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.stack.clear();
        self.stats = CacheStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, CacheConfig, ModuloIndex};

    #[test]
    fn never_suffers_conflict_misses() {
        let mut fa = FullyAssociativeCache::new(4, 2);
        // 8 distinct blocks cycled twice: all misses are compulsory or capacity.
        for _ in 0..2 {
            for b in 0..8u64 {
                fa.access_block(BlockAddr(b));
            }
        }
        assert_eq!(fa.stats().conflict_misses, 0);
        assert_eq!(fa.stats().misses, 16); // working set exceeds capacity
        assert_eq!(fa.stats().compulsory_misses, 8);
        assert_eq!(fa.stats().capacity_misses, 8);
    }

    #[test]
    fn hits_within_capacity() {
        let mut fa = FullyAssociativeCache::new(4, 2);
        for b in 0..4u64 {
            fa.access_block(BlockAddr(b));
        }
        for b in 0..4u64 {
            assert!(fa.access_block(BlockAddr(b)).is_hit());
        }
        assert_eq!(fa.stats().hits, 4);
    }

    #[test]
    fn dominates_direct_mapped_cache_on_conflicting_trace() {
        let config = CacheConfig::paper_cache(1);
        let mut dm = Cache::new(config, ModuloIndex::for_config(&config));
        let mut fa = FullyAssociativeCache::for_config(&config);
        assert_eq!(fa.capacity_blocks(), 256);
        // Ping-pong between two conflicting blocks.
        let trace: Vec<BlockAddr> = (0..100).map(|i| BlockAddr((i % 2) * 256)).collect();
        let dm_stats = dm.simulate_blocks(trace.clone());
        let fa_stats = fa.simulate_blocks(trace);
        assert!(fa_stats.misses < dm_stats.misses);
        assert_eq!(fa_stats.misses, 2);
    }

    #[test]
    fn access_addr_uses_block_granularity() {
        let mut fa = FullyAssociativeCache::new(16, 4);
        assert!(fa.access_addr(0x100u64).is_miss());
        assert!(fa.access_addr(0x10Fu64).is_hit());
        assert!(fa.access_addr(0x110u64).is_miss());
    }

    #[test]
    fn reset_clears_everything() {
        let mut fa = FullyAssociativeCache::new(2, 2);
        fa.access_block(BlockAddr(1));
        fa.reset();
        assert_eq!(fa.stats().accesses, 0);
        assert!(fa.access_block(BlockAddr(1)).is_miss());
    }
}
