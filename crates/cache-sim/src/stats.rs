//! Hit/miss accounting and the misses-per-K-uop metric.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::MissClass;

/// Counters gathered while simulating a cache.
///
/// The paper reports the baseline as *misses per K-uop* and the effect of an
/// optimized index function as the *percentage of misses removed*;
/// [`CacheStats::misses_per_kilo_ops`] and [`CacheStats::percent_misses_removed`]
/// compute exactly those two figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses to never-before-seen blocks (3C: compulsory).
    pub compulsory_misses: u64,
    /// Misses whose reuse distance exceeds the cache capacity (3C: capacity).
    pub capacity_misses: u64,
    /// Remaining misses, caused by the index function (3C: conflict).
    pub conflict_misses: u64,
    /// Number of blocks evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    /// Records a miss, optionally with its 3C classification and whether it
    /// evicted a resident block.
    pub fn record_miss(&mut self, class: Option<MissClass>, evicted: bool) {
        self.accesses += 1;
        self.misses += 1;
        if evicted {
            self.evictions += 1;
        }
        match class {
            Some(MissClass::Compulsory) => self.compulsory_misses += 1,
            Some(MissClass::Capacity) => self.capacity_misses += 1,
            Some(MissClass::Conflict) => self.conflict_misses += 1,
            None => {}
        }
    }

    /// Miss rate in `[0, 1]`; 0 when no access was made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`; 0 when no access was made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand executed operations — the `base` columns of the
    /// paper's Table 2.
    ///
    /// `ops` is the total number of operations (µops) the traced program
    /// executed, which the workload crates report alongside each trace.
    #[must_use]
    pub fn misses_per_kilo_ops(&self, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / ops as f64
        }
    }

    /// Percentage of misses removed relative to a baseline run — the metric of
    /// the paper's Tables 2 and 3. Negative values mean the optimized function
    /// *added* misses (this happens occasionally; see the paper's Section 6).
    #[must_use]
    pub fn percent_misses_removed(baseline: &CacheStats, optimized: &CacheStats) -> f64 {
        if baseline.misses == 0 {
            0.0
        } else {
            (baseline.misses as f64 - optimized.misses as f64) * 100.0 / baseline.misses as f64
        }
    }

    /// Number of misses that were classified (3C counters assigned).
    #[must_use]
    pub fn classified_misses(&self) -> u64 {
        self.compulsory_misses + self.capacity_misses + self.conflict_misses
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            compulsory_misses: self.compulsory_misses + rhs.compulsory_misses,
            capacity_misses: self.capacity_misses + rhs.capacity_misses,
            conflict_misses: self.conflict_misses + rhs.conflict_misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss rate; {} compulsory / {} capacity / {} conflict)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_rate() * 100.0,
            self.compulsory_misses,
            self.capacity_misses,
            self.conflict_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_updates_counters() {
        let mut s = CacheStats::new();
        s.record_hit();
        s.record_miss(Some(MissClass::Compulsory), false);
        s.record_miss(Some(MissClass::Conflict), true);
        s.record_miss(None, true);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.compulsory_misses, 1);
        assert_eq!(s.conflict_misses, 1);
        assert_eq!(s.capacity_misses, 0);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.classified_misses(), 2);
    }

    #[test]
    fn rates_handle_zero_accesses() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.misses_per_kilo_ops(0), 0.0);
    }

    #[test]
    fn miss_rate_and_mpki() {
        let mut s = CacheStats::new();
        for _ in 0..75 {
            s.record_hit();
        }
        for _ in 0..25 {
            s.record_miss(None, false);
        }
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        // 25 misses over 2000 ops -> 12.5 misses per K-op.
        assert!((s.misses_per_kilo_ops(2000) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn percent_removed_matches_paper_convention() {
        let mut base = CacheStats::new();
        let mut opt = CacheStats::new();
        for _ in 0..100 {
            base.record_miss(None, false);
        }
        for _ in 0..58 {
            opt.record_miss(None, false);
        }
        assert!((CacheStats::percent_misses_removed(&base, &opt) - 42.0).abs() < 1e-12);
        // More misses than the baseline gives a negative reduction.
        let mut worse = CacheStats::new();
        for _ in 0..110 {
            worse.record_miss(None, false);
        }
        assert!(CacheStats::percent_misses_removed(&base, &worse) < 0.0);
        // Zero baseline misses: defined as 0% removed.
        assert_eq!(
            CacheStats::percent_misses_removed(&CacheStats::new(), &opt),
            0.0
        );
    }

    #[test]
    fn addition_merges_counters() {
        let mut a = CacheStats::new();
        a.record_hit();
        a.record_miss(Some(MissClass::Capacity), true);
        let mut b = CacheStats::new();
        b.record_miss(Some(MissClass::Conflict), false);
        let c = a + b;
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.capacity_misses, 1);
        assert_eq!(c.conflict_misses, 1);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_mentions_all_miss_classes() {
        let mut s = CacheStats::new();
        s.record_miss(Some(MissClass::Compulsory), false);
        let text = s.to_string();
        assert!(text.contains("compulsory"));
        assert!(text.contains("conflict"));
    }
}
