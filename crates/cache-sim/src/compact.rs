//! Allocation-free LRU tag arrays for the fast replay engine.
//!
//! The general-purpose `CacheSet` keeps one `Vec<u64>` per set and reorders it
//! with `remove`/`push` on every access. That is flexible (any associativity,
//! any policy) but costs an allocation per set and memmove traffic per touch.
//! For the replay fast path — LRU only, associativity ≤ [`COMPACT_MAX_WAYS`] —
//! [`CompactSets`] stores every set's tags in one flat array with the recency
//! order packed in place, so a whole cache's simulation state is two
//! allocations total and each access is a short in-register scan.
//!
//! The hit/fill/evict outcomes are bit-identical to `CacheSet` under LRU:
//! tags are kept least-recently-used first within each set's occupied prefix,
//! a hit rotates the touched tag to the most-recently-used end, and an
//! eviction drops the front.

/// Largest associativity the compact tag arrays support. Beyond this the
/// linear within-set scan stops being a clear win and callers should fall
/// back to the general simulator.
pub const COMPACT_MAX_WAYS: u32 = 8;

/// Outcome of one access to a [`CompactSets`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactAccess {
    /// The block was already resident.
    Hit,
    /// The block was inserted into a free way.
    MissFilled,
    /// The block was inserted after evicting the LRU resident.
    MissEvicted,
}

/// Flat LRU tag storage for `num_sets × ways` blocks.
#[derive(Debug, Clone)]
pub struct CompactSets {
    /// `num_sets × ways` tags; within a set the occupied prefix is ordered
    /// least-recently-used first.
    tags: Vec<u64>,
    /// Occupied ways per set.
    occupancy: Vec<u8>,
    ways: usize,
}

impl CompactSets {
    /// Creates empty tag arrays for `num_sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds [`COMPACT_MAX_WAYS`].
    #[must_use]
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(
            ways >= 1 && ways <= COMPACT_MAX_WAYS as usize,
            "CompactSets supports 1..={COMPACT_MAX_WAYS} ways, got {ways}"
        );
        CompactSets {
            tags: vec![0; num_sets * ways],
            occupancy: vec![0; num_sets],
            ways,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.occupancy.len()
    }

    /// Ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accesses `block` in `set` under LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn access(&mut self, set: usize, block: u64) -> CompactAccess {
        let len = self.occupancy[set] as usize;
        if self.ways == 1 {
            // Direct-mapped: one compare, no recency bookkeeping.
            if len != 0 && self.tags[set] == block {
                return CompactAccess::Hit;
            }
            self.tags[set] = block;
            if len == 0 {
                self.occupancy[set] = 1;
                return CompactAccess::MissFilled;
            }
            return CompactAccess::MissEvicted;
        }
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        // Scan most-recent-first: temporal locality makes recent ways the
        // likeliest hits.
        for i in (0..len).rev() {
            if slots[i] == block {
                // Rotate the hit tag to the most-recently-used end of the
                // occupied prefix (same order `CacheSet` maintains).
                slots[i..len].rotate_left(1);
                return CompactAccess::Hit;
            }
        }
        if len < self.ways {
            slots[len] = block;
            self.occupancy[set] = (len + 1) as u8;
            return CompactAccess::MissFilled;
        }
        // Full set: evict the LRU front, shift, insert at the MRU end.
        slots.rotate_left(1);
        slots[self.ways - 1] = block;
        CompactAccess::MissEvicted
    }

    /// Empties every set.
    pub fn flush(&mut self) {
        self.occupancy.iter_mut().for_each(|o| *o = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_hit_fill_evict() {
        let mut sets = CompactSets::new(4, 1);
        assert_eq!(sets.access(2, 10), CompactAccess::MissFilled);
        assert_eq!(sets.access(2, 10), CompactAccess::Hit);
        assert_eq!(sets.access(2, 11), CompactAccess::MissEvicted);
        assert_eq!(sets.access(2, 10), CompactAccess::MissEvicted);
        assert_eq!(sets.access(3, 10), CompactAccess::MissFilled);
        assert_eq!(sets.num_sets(), 4);
        assert_eq!(sets.ways(), 1);
    }

    #[test]
    fn lru_order_matches_cache_set() {
        let mut sets = CompactSets::new(1, 2);
        assert_eq!(sets.access(0, 1), CompactAccess::MissFilled);
        assert_eq!(sets.access(0, 2), CompactAccess::MissFilled);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(sets.access(0, 1), CompactAccess::Hit);
        assert_eq!(sets.access(0, 3), CompactAccess::MissEvicted);
        // 2 was evicted; 1 and 3 remain.
        assert_eq!(sets.access(0, 1), CompactAccess::Hit);
        assert_eq!(sets.access(0, 3), CompactAccess::Hit);
        assert_eq!(sets.access(0, 2), CompactAccess::MissEvicted);
    }

    #[test]
    fn mirrors_general_cache_set_on_random_streams() {
        use crate::replacement::{CacheSet, SetAccess};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(42);
        for ways in 1..=COMPACT_MAX_WAYS as usize {
            let mut compact = CompactSets::new(1, ways);
            let mut general = CacheSet::new(ways);
            let mut policy_rng = StdRng::seed_from_u64(0);
            for _ in 0..2000 {
                let block = rng.gen_range(0u64..(2 * ways as u64 + 3));
                let got = compact.access(0, block);
                let want = general.access(block, crate::ReplacementPolicy::Lru, &mut policy_rng);
                let same = matches!(
                    (got, want),
                    (CompactAccess::Hit, SetAccess::Hit)
                        | (CompactAccess::MissFilled, SetAccess::MissFilled)
                        | (CompactAccess::MissEvicted, SetAccess::MissEvicted(_))
                );
                assert!(same, "ways {ways}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn flush_empties_all_sets() {
        let mut sets = CompactSets::new(2, 2);
        sets.access(0, 1);
        sets.access(1, 2);
        sets.flush();
        assert_eq!(sets.access(0, 1), CompactAccess::MissFilled);
        assert_eq!(sets.access(1, 2), CompactAccess::MissFilled);
    }

    #[test]
    #[should_panic(expected = "CompactSets supports")]
    fn rejects_too_many_ways() {
        let _ = CompactSets::new(1, COMPACT_MAX_WAYS as usize + 1);
    }
}
