//! The set-associative cache simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::replacement::{CacheSet, SetAccess};
use crate::{
    Address, BlockAddr, CacheConfig, CacheError, CacheStats, IndexFunction, MissClass,
    MissClassifier, ReplacementPolicy,
};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident.
    Hit,
    /// The block was not resident and has been fetched.
    Miss,
}

impl AccessOutcome {
    /// `true` for a hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        self == AccessOutcome::Hit
    }

    /// `true` for a miss.
    #[must_use]
    pub fn is_miss(self) -> bool {
        self == AccessOutcome::Miss
    }
}

/// A trace-driven set-associative cache with a pluggable index function.
///
/// Residency is tracked by full block address, so simulation results are
/// correct for *any* index function without modelling the tag function (the
/// tag-function hardware question is treated separately by the cost model in
/// the `xorindex` crate).
///
/// # Example
///
/// ```
/// use cache_sim::{Cache, CacheConfig, XorIndex};
/// use gf2::BitMatrix;
///
/// let config = CacheConfig::paper_cache(1);
/// // s_c = a_c ^ a_{c+8}: a permutation-based XOR function.
/// let matrix = BitMatrix::from_fn(16, 8, |r, c| r == c || r == c + 8);
/// let mut cache = Cache::new(config, XorIndex::new(matrix));
/// cache.access_addr(0x0000);
/// cache.access_addr(0x0400); // would conflict under modulo indexing
/// assert_eq!(cache.access_addr(0x0000).is_hit(), true);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    index_fn: Box<dyn IndexFunction>,
    sets: Vec<CacheSet>,
    policy: ReplacementPolicy,
    rng: StdRng,
    stats: CacheStats,
    classifier: Option<MissClassifier>,
    set_conflicts: Option<Vec<u64>>,
}

impl Cache {
    /// Creates a cache with the default LRU replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the index function's set count does not match the
    /// configuration; use [`Cache::try_new`] for a fallible version.
    #[must_use]
    pub fn new<I: IndexFunction + 'static>(config: CacheConfig, index_fn: I) -> Self {
        Self::try_new(config, index_fn).expect("index function must match the cache geometry")
    }

    /// Creates a cache, validating that the index function targets exactly the
    /// cache's number of sets.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::IndexFunctionMismatch`] when the set counts differ.
    pub fn try_new<I: IndexFunction + 'static>(
        config: CacheConfig,
        index_fn: I,
    ) -> Result<Self, CacheError> {
        Self::from_boxed(config, Box::new(index_fn))
    }

    /// Creates a cache from an already boxed index function.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::IndexFunctionMismatch`] when the set counts differ.
    pub fn from_boxed(
        config: CacheConfig,
        index_fn: Box<dyn IndexFunction>,
    ) -> Result<Self, CacheError> {
        if index_fn.num_sets() != config.num_sets() {
            return Err(CacheError::IndexFunctionMismatch {
                expected_sets: config.num_sets(),
                actual_sets: index_fn.num_sets(),
            });
        }
        let sets = (0..config.num_sets())
            .map(|_| CacheSet::new(config.associativity() as usize))
            .collect();
        Ok(Cache {
            config,
            index_fn,
            sets,
            policy: ReplacementPolicy::Lru,
            rng: StdRng::seed_from_u64(0x5EED),
            stats: CacheStats::new(),
            classifier: None,
            set_conflicts: None,
        })
    }

    /// Selects a replacement policy (default LRU).
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables 3C miss classification (compulsory / capacity / conflict).
    ///
    /// Classification maintains an unbounded LRU stack, which costs extra time
    /// and memory proportional to the trace footprint, so it is off by default.
    #[must_use]
    pub fn with_classification(mut self) -> Self {
        self.classifier = Some(MissClassifier::new(self.config.num_blocks() as usize));
        self
    }

    /// Enables a per-set conflict-miss breakdown on top of 3C classification
    /// (implies [`Cache::with_classification`]).
    ///
    /// Each conflict miss is attributed to the set the missing block indexed
    /// into, so a verification report can localize *where* an index function
    /// still collides. The per-set counters always sum to the aggregate
    /// [`CacheStats::conflict_misses`] counter.
    #[must_use]
    pub fn with_set_conflict_tracking(mut self) -> Self {
        if self.classifier.is_none() {
            self.classifier = Some(MissClassifier::new(self.config.num_blocks() as usize));
        }
        self.set_conflicts = Some(vec![0; self.config.num_sets() as usize]);
        self
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Short description of the index function in use.
    #[must_use]
    pub fn index_description(&self) -> String {
        self.index_fn.describe()
    }

    /// The replacement policy in use.
    #[must_use]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Per-set conflict-miss counters, or `None` when
    /// [`Cache::with_set_conflict_tracking`] was not enabled.
    #[must_use]
    pub fn set_conflicts(&self) -> Option<&[u64]> {
        self.set_conflicts.as_deref()
    }

    /// The sets that still collide, as `(set index, conflict misses)` pairs in
    /// ascending set order with zero entries skipped. Empty when tracking is
    /// off or nothing conflicted.
    #[must_use]
    pub fn nonzero_set_conflicts(&self) -> Vec<(u32, u64)> {
        self.set_conflicts
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count != 0)
            .map(|(set, &count)| (set as u32, count))
            .collect()
    }

    /// `true` when the block is currently resident.
    #[must_use]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let set = self.index_fn.set_index(block) as usize;
        self.sets[set].contains(block.as_u64())
    }

    /// The blocks currently resident in the given set (unordered snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `set` is not smaller than the number of sets.
    #[must_use]
    pub fn resident_blocks(&self, set: usize) -> Vec<BlockAddr> {
        self.sets[set]
            .resident()
            .iter()
            .map(|&b| BlockAddr(b))
            .collect()
    }

    /// Accesses a byte address.
    pub fn access_addr<A: Into<Address>>(&mut self, addr: A) -> AccessOutcome {
        let block = addr.into().block(self.config.block_bits());
        self.access_block(block)
    }

    /// Accesses a block address.
    pub fn access_block(&mut self, block: BlockAddr) -> AccessOutcome {
        let reuse = self.classifier.as_mut().map(|c| c.observe(block));
        let set = self.index_fn.set_index(block) as usize;
        debug_assert!(set < self.sets.len(), "index function out of range");
        match self.sets[set].access(block.as_u64(), self.policy, &mut self.rng) {
            SetAccess::Hit => {
                self.stats.record_hit();
                AccessOutcome::Hit
            }
            outcome @ (SetAccess::MissFilled | SetAccess::MissEvicted(_)) => {
                let class = reuse.map(MissClassifier::classify_miss);
                if class == Some(MissClass::Conflict) {
                    if let Some(counters) = &mut self.set_conflicts {
                        counters[set] += 1;
                    }
                }
                self.stats
                    .record_miss(class, matches!(outcome, SetAccess::MissEvicted(_)));
                AccessOutcome::Miss
            }
        }
    }

    /// Runs a whole block-address trace through the cache and returns the
    /// statistics gathered **for this call only** (the cache's cumulative
    /// statistics also advance).
    pub fn simulate_blocks<I>(&mut self, blocks: I) -> CacheStats
    where
        I: IntoIterator<Item = BlockAddr>,
    {
        let before = self.stats;
        for b in blocks {
            self.access_block(b);
        }
        CacheStats {
            accesses: self.stats.accesses - before.accesses,
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
            compulsory_misses: self.stats.compulsory_misses - before.compulsory_misses,
            capacity_misses: self.stats.capacity_misses - before.capacity_misses,
            conflict_misses: self.stats.conflict_misses - before.conflict_misses,
            evictions: self.stats.evictions - before.evictions,
        }
    }

    /// Runs a byte-address trace through the cache; see
    /// [`Cache::simulate_blocks`].
    pub fn simulate_addrs<I, A>(&mut self, addrs: I) -> CacheStats
    where
        I: IntoIterator<Item = A>,
        A: Into<Address>,
    {
        let bits = self.config.block_bits();
        self.simulate_blocks(addrs.into_iter().map(move |a| a.into().block(bits)))
    }

    /// Invalidates all resident blocks but keeps statistics and history.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.flush();
        }
    }

    /// Clears contents, statistics and classification history.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = CacheStats::new();
        if let Some(c) = &mut self.classifier {
            c.reset();
        }
        if let Some(counters) = &mut self.set_conflicts {
            counters.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitSelectIndex, ModuloIndex, XorIndex};
    use gf2::BitMatrix;

    fn dm_1kb() -> CacheConfig {
        CacheConfig::paper_cache(1)
    }

    #[test]
    fn mismatched_index_function_is_rejected() {
        let config = dm_1kb();
        let wrong = ModuloIndex::new(4); // 16 sets, cache has 256
        assert!(matches!(
            Cache::try_new(config, wrong),
            Err(CacheError::IndexFunctionMismatch {
                expected_sets: 256,
                actual_sets: 16
            })
        ));
    }

    #[test]
    fn conflicting_strided_accesses_thrash_a_direct_mapped_cache() {
        let config = dm_1kb();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        // Alternate between two addresses 1 KB apart: every access misses.
        for _ in 0..10 {
            assert_eq!(cache.access_addr(0x0000u64), AccessOutcome::Miss);
            assert_eq!(cache.access_addr(0x0400u64), AccessOutcome::Miss);
        }
        assert_eq!(cache.stats().misses, 20);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn xor_indexing_removes_the_power_of_two_conflict() {
        let config = dm_1kb();
        let matrix = BitMatrix::from_fn(16, 8, |r, c| r == c || r == c + 8);
        let mut cache = Cache::new(config, XorIndex::new(matrix));
        cache.access_addr(0x0000u64);
        cache.access_addr(0x0400u64);
        for _ in 0..10 {
            assert!(cache.access_addr(0x0000u64).is_hit());
            assert!(cache.access_addr(0x0400u64).is_hit());
        }
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn classification_splits_misses_into_3cs() {
        let config = CacheConfig::builder()
            .size_bytes(16)
            .block_bytes(4)
            .associativity(1)
            .build()
            .unwrap();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config)).with_classification();
        // 4-block cache. Blocks 0 and 4 conflict (same set); blocks 0..8 wrap
        // around capacity.
        let trace: Vec<u64> = vec![0, 4, 0, 4, 1, 2, 3, 5, 6, 7, 0];
        let stats = cache.simulate_blocks(trace.into_iter().map(BlockAddr));
        assert_eq!(stats.misses, stats.classified_misses());
        assert!(stats.compulsory_misses >= 8); // 8 distinct blocks
        assert!(stats.conflict_misses >= 2); // the 0/4 ping-pong
        assert_eq!(stats.accesses, 11);
    }

    #[test]
    fn per_set_conflicts_sum_to_the_aggregate_counter() {
        let config = CacheConfig::builder()
            .size_bytes(16)
            .block_bytes(4)
            .associativity(1)
            .build()
            .unwrap();
        let mut cache =
            Cache::new(config, ModuloIndex::for_config(&config)).with_set_conflict_tracking();
        // Blocks 0 and 4 ping-pong in set 0; blocks 1 and 5 in set 1.
        let trace: Vec<u64> = vec![0, 4, 0, 4, 0, 1, 5, 1, 5, 1];
        let stats = cache.simulate_blocks(trace.into_iter().map(BlockAddr));
        assert!(stats.conflict_misses > 0, "the ping-pongs must conflict");
        let per_set = cache.set_conflicts().expect("tracking enabled");
        assert_eq!(per_set.len(), config.num_sets() as usize);
        assert_eq!(per_set.iter().sum::<u64>(), stats.conflict_misses);
        // Only sets 0 and 1 were ever indexed, so only they may conflict.
        assert!(per_set[2..].iter().all(|&c| c == 0));
        let nonzero = cache.nonzero_set_conflicts();
        assert_eq!(
            nonzero.iter().map(|&(_, c)| c).sum::<u64>(),
            stats.conflict_misses
        );
        assert!(nonzero.iter().all(|&(set, _)| set < 2));
        // Windows are sorted and deduplicated by construction.
        assert!(nonzero.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn set_conflict_tracking_implies_classification_and_resets() {
        let config = CacheConfig::builder()
            .size_bytes(16)
            .block_bytes(4)
            .associativity(1)
            .build()
            .unwrap();
        let mut cache =
            Cache::new(config, ModuloIndex::for_config(&config)).with_set_conflict_tracking();
        let trace: Vec<u64> = vec![0, 4, 0, 4];
        let stats = cache.simulate_blocks(trace.into_iter().map(BlockAddr));
        // Tracking turned classification on even without with_classification().
        assert_eq!(stats.classified_misses(), stats.misses);
        assert!(!cache.nonzero_set_conflicts().is_empty());
        cache.reset();
        assert!(cache.nonzero_set_conflicts().is_empty());
        assert_eq!(cache.set_conflicts().unwrap().iter().sum::<u64>(), 0);
    }

    #[test]
    fn untracked_cache_reports_no_per_set_counters() {
        let config = dm_1kb();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        cache.access_block(BlockAddr(0));
        assert!(cache.set_conflicts().is_none());
        assert!(cache.nonzero_set_conflicts().is_empty());
    }

    #[test]
    fn simulate_returns_stats_delta_only() {
        let config = dm_1kb();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        let first = cache.simulate_blocks((0..100).map(BlockAddr));
        assert_eq!(first.accesses, 100);
        let second = cache.simulate_blocks((0..100).map(BlockAddr));
        assert_eq!(second.accesses, 100);
        assert_eq!(second.misses, 0, "everything fits and is now resident");
        assert_eq!(cache.stats().accesses, 200);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let config = dm_1kb();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        cache.access_block(BlockAddr(1));
        assert!(cache.contains_block(BlockAddr(1)));
        cache.flush();
        assert!(!cache.contains_block(BlockAddr(1)));
        assert_eq!(cache.stats().accesses, 1);
        cache.reset();
        assert_eq!(cache.stats().accesses, 0);
    }

    #[test]
    fn set_associative_cache_uses_lru_within_the_set() {
        let config = CacheConfig::builder()
            .size_bytes(64)
            .block_bytes(4)
            .associativity(2)
            .build()
            .unwrap();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        // Set 0 holds blocks whose low 3 bits are 0: blocks 0, 8, 16, ...
        cache.access_block(BlockAddr(0));
        cache.access_block(BlockAddr(8));
        assert!(cache.access_block(BlockAddr(0)).is_hit());
        // Inserting a third block evicts LRU block 8.
        cache.access_block(BlockAddr(16));
        assert!(cache.contains_block(BlockAddr(0)));
        assert!(!cache.contains_block(BlockAddr(8)));
    }

    #[test]
    fn policies_can_be_selected() {
        let config = dm_1kb();
        let cache = Cache::new(config, ModuloIndex::for_config(&config))
            .with_policy(ReplacementPolicy::Fifo);
        assert_eq!(cache.policy(), ReplacementPolicy::Fifo);
        assert!(cache.index_description().contains("modulo"));
    }

    #[test]
    fn bit_select_index_changes_the_conflict_pattern() {
        let config = dm_1kb();
        // Selecting bits 8..16 of the block address makes blocks 0 and 0x100
        // (1 KB apart as byte addresses = 0x100 blocks) map to different sets.
        let select: Vec<usize> = (8..16).collect();
        let mut cache = Cache::new(config, BitSelectIndex::new(select));
        cache.access_block(BlockAddr(0x000));
        cache.access_block(BlockAddr(0x100));
        assert!(cache.access_block(BlockAddr(0x000)).is_hit());
    }

    #[test]
    fn access_addr_groups_bytes_into_blocks() {
        let config = dm_1kb();
        let mut cache = Cache::new(config, ModuloIndex::for_config(&config));
        assert!(cache.access_addr(0x100u64).is_miss());
        // Same 4-byte block.
        assert!(cache.access_addr(0x102u64).is_hit());
        assert!(cache.access_addr(0x103u64).is_hit());
        // Next block.
        assert!(cache.access_addr(0x104u64).is_miss());
    }
}
