//! LRU stack (stack-distance) data structure.
//!
//! The profiling algorithm of the paper (Fig. 1) and the 3C miss classifier
//! both walk an LRU stack: blocks are kept sorted by recency, and an access to
//! block `x` needs to know which blocks were touched since the previous access
//! to `x` (they are exactly the blocks above `x` on the stack).

use std::collections::HashMap;

/// Result of scanning the stack for a block, as returned by
/// [`LruStack::access_scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackScan {
    /// The block had never been accessed before (a compulsory / cold access).
    Cold,
    /// The block was found within the scan limit; the payload is the stack
    /// distance, i.e. the number of *distinct* blocks accessed since the
    /// previous access to this block.
    Within {
        /// Number of distinct blocks above the accessed block.
        distance: usize,
    },
    /// The block exists on the stack but deeper than the scan limit: its reuse
    /// distance exceeds the limit (a capacity miss for a cache of that many
    /// blocks).
    Beyond,
}

/// A move-to-front LRU stack over block addresses with bounded-depth scanning.
///
/// Each access moves the block to the top of the stack. The caller supplies a
/// scan `limit`: blocks whose previous access is deeper than the limit are
/// reported as [`StackScan::Beyond`] without walking the whole stack, exactly
/// matching the capacity-miss filtering of the paper's profiling algorithm
/// ("reuse distance > cache size").
///
/// # Example
///
/// ```
/// use cache_sim::{LruStack, StackScan};
///
/// let mut stack = LruStack::new();
/// assert_eq!(stack.access_scan(10, 4, |_| {}), StackScan::Cold);
/// assert_eq!(stack.access_scan(20, 4, |_| {}), StackScan::Cold);
/// let mut seen = Vec::new();
/// // Re-access 10: block 20 was touched in between.
/// assert_eq!(
///     stack.access_scan(10, 4, |b| seen.push(b)),
///     StackScan::Within { distance: 1 }
/// );
/// assert_eq!(seen, vec![20]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruStack {
    /// Doubly linked list stored in a slab; `head` is the most recent block.
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
    position: HashMap<u64, usize>,
}

#[derive(Debug, Clone)]
struct Node {
    block: u64,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruStack {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct blocks ever pushed (current stack depth).
    #[must_use]
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// `true` when no block has been accessed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// `true` when the block is somewhere on the stack.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.position.contains_key(&block)
    }

    /// The most recently accessed block, if any.
    #[must_use]
    pub fn most_recent(&self) -> Option<u64> {
        self.head.map(|i| self.nodes[i].block)
    }

    /// Accesses `block`: scans for it from the top of the stack (calling
    /// `visit` on every distinct block encountered above it, as long as the
    /// block is found within `limit` entries), reports the outcome, and moves
    /// the block to the top.
    ///
    /// When the block is deeper than `limit`, `visit` receives nothing and the
    /// outcome is [`StackScan::Beyond`]; when the block was never seen,
    /// the outcome is [`StackScan::Cold`]. In both cases the block still moves
    /// to (or is pushed on) the top of the stack.
    pub fn access_scan<F: FnMut(u64)>(
        &mut self,
        block: u64,
        limit: usize,
        mut visit: F,
    ) -> StackScan {
        let outcome = match self.position.get(&block).copied() {
            None => StackScan::Cold,
            Some(node_idx) => {
                // Walk from the head looking for the node, up to `limit` steps.
                let mut distance = 0usize;
                let mut cursor = self.head;
                let mut found = false;
                let mut above: Vec<u64> = Vec::new();
                while let Some(i) = cursor {
                    if i == node_idx {
                        found = true;
                        break;
                    }
                    if distance >= limit {
                        break;
                    }
                    above.push(self.nodes[i].block);
                    distance += 1;
                    cursor = self.nodes[i].next;
                }
                if found {
                    for b in above {
                        visit(b);
                    }
                    StackScan::Within { distance }
                } else {
                    StackScan::Beyond
                }
            }
        };
        self.touch(block);
        outcome
    }

    /// Accesses `block` without visiting the intermediate blocks; equivalent
    /// to `access_scan(block, limit, |_| {})`.
    pub fn access(&mut self, block: u64, limit: usize) -> StackScan {
        self.access_scan(block, limit, |_| {})
    }

    /// Exact stack distance of `block` if it is present (may walk the whole
    /// stack). Intended for tests and small traces.
    #[must_use]
    pub fn distance_of(&self, block: u64) -> Option<usize> {
        let node_idx = *self.position.get(&block)?;
        let mut distance = 0;
        let mut cursor = self.head;
        while let Some(i) = cursor {
            if i == node_idx {
                return Some(distance);
            }
            distance += 1;
            cursor = self.nodes[i].next;
        }
        None
    }

    /// Moves `block` to the top of the stack, inserting it if new.
    pub fn touch(&mut self, block: u64) {
        match self.position.get(&block).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
            }
            None => {
                let idx = self.alloc(block);
                self.position.insert(block, idx);
                self.push_front(idx);
            }
        }
    }

    /// Removes every block from the stack.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
        self.position.clear();
    }

    /// Iterates over the blocks from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::successors(self.head, move |&i| self.nodes[i].next)
            .map(move |i| self.nodes[i].block)
    }

    fn alloc(&mut self, block: u64) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                block,
                prev: None,
                next: None,
            };
            idx
        } else {
            self.nodes.push(Node {
                block,
                prev: None,
                next: None,
            });
            self.nodes.len() - 1
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_accesses_are_reported_once_per_block() {
        let mut s = LruStack::new();
        assert_eq!(s.access(1, 10), StackScan::Cold);
        assert_eq!(s.access(2, 10), StackScan::Cold);
        assert_eq!(s.access(1, 10), StackScan::Within { distance: 1 });
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(3));
    }

    #[test]
    fn distance_counts_distinct_intermediate_blocks() {
        let mut s = LruStack::new();
        for b in [1u64, 2, 3, 2, 2, 4] {
            s.access(b, 100);
        }
        // Since the last access to 1, distinct blocks {2, 3, 4} were touched.
        assert_eq!(s.access(1, 100), StackScan::Within { distance: 3 });
    }

    #[test]
    fn visit_reports_blocks_above_most_recent_first() {
        let mut s = LruStack::new();
        for b in [10u64, 20, 30, 40] {
            s.access(b, 100);
        }
        let mut seen = Vec::new();
        assert_eq!(
            s.access_scan(10, 100, |b| seen.push(b)),
            StackScan::Within { distance: 3 }
        );
        assert_eq!(seen, vec![40, 30, 20]);
        // 10 is now the most recent block.
        assert_eq!(s.most_recent(), Some(10));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![10, 40, 30, 20]);
    }

    #[test]
    fn beyond_limit_is_reported_without_visiting() {
        let mut s = LruStack::new();
        for b in 0..10u64 {
            s.access(b, 100);
        }
        let mut seen = Vec::new();
        // Block 0 is at distance 9, deeper than the limit of 4.
        assert_eq!(s.access_scan(0, 4, |b| seen.push(b)), StackScan::Beyond);
        assert!(seen.is_empty());
        // It still moved to the top.
        assert_eq!(s.most_recent(), Some(0));
        assert_eq!(s.access(0, 4), StackScan::Within { distance: 0 });
    }

    #[test]
    fn limit_is_inclusive_boundary() {
        let mut s = LruStack::new();
        for b in [1u64, 2, 3, 4, 5] {
            s.access(b, 100);
        }
        // Block 1 is at distance 4: found when limit >= 4, beyond when < 4.
        assert_eq!(s.distance_of(1), Some(4));
        let mut clone = s.clone();
        assert_eq!(clone.access(1, 4), StackScan::Within { distance: 4 });
        assert_eq!(s.access(1, 3), StackScan::Beyond);
    }

    #[test]
    fn repeated_access_has_distance_zero() {
        let mut s = LruStack::new();
        s.access(7, 10);
        assert_eq!(s.access(7, 10), StackScan::Within { distance: 0 });
        assert_eq!(s.access(7, 0), StackScan::Within { distance: 0 });
    }

    #[test]
    fn clear_empties_the_stack() {
        let mut s = LruStack::new();
        s.access(1, 10);
        s.access(2, 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.access(1, 10), StackScan::Cold);
    }

    #[test]
    fn distance_matches_reference_simulation() {
        // Cross-check against a naive Vec-based LRU stack.
        let trace: Vec<u64> = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4]
            .into_iter()
            .collect();
        let mut s = LruStack::new();
        let mut reference: Vec<u64> = Vec::new();
        for &b in &trace {
            let expect = reference.iter().position(|&x| x == b);
            let got = s.access(b, usize::MAX);
            match expect {
                None => assert_eq!(got, StackScan::Cold),
                Some(d) => assert_eq!(got, StackScan::Within { distance: d }),
            }
            if let Some(pos) = expect {
                reference.remove(pos);
            }
            reference.insert(0, b);
        }
    }
}
