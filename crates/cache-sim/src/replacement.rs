//! Replacement policies and per-set state.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Block replacement policy within a cache set.
///
/// The paper's evaluation uses LRU (the only policy that matters for a
/// direct-mapped cache is trivially "the single resident block"); FIFO and
/// random are provided for the replacement-sensitivity ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least recently used block.
    #[default]
    Lru,
    /// Evict the block that has been resident longest.
    Fifo,
    /// Evict a uniformly random resident block.
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(name)
    }
}

/// Storage and replacement bookkeeping for one cache set.
///
/// Blocks are identified by their full block address, so the simulation is
/// correct for any index function without needing an explicit tag function
/// (the hardware tag-function question is handled by the cost model in the
/// `xorindex` crate).
#[derive(Debug, Clone)]
pub(crate) struct CacheSet {
    /// Resident blocks ordered by the policy's bookkeeping:
    /// * LRU — most recently used last;
    /// * FIFO — insertion order, oldest first;
    /// * Random — arbitrary order.
    blocks: Vec<u64>,
    ways: usize,
}

/// Result of inserting a block into a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SetAccess {
    /// The block was already resident.
    Hit,
    /// The block was inserted into a free way.
    MissFilled,
    /// The block was inserted after evicting the returned block.
    MissEvicted(u64),
}

impl CacheSet {
    pub(crate) fn new(ways: usize) -> Self {
        CacheSet {
            blocks: Vec::with_capacity(ways),
            ways,
        }
    }

    pub(crate) fn contains(&self, block: u64) -> bool {
        self.blocks.contains(&block)
    }

    pub(crate) fn resident(&self) -> &[u64] {
        &self.blocks
    }

    pub(crate) fn access(
        &mut self,
        block: u64,
        policy: ReplacementPolicy,
        rng: &mut StdRng,
    ) -> SetAccess {
        if let Some(pos) = self.blocks.iter().position(|&b| b == block) {
            if policy == ReplacementPolicy::Lru {
                // Move to the most-recently-used end.
                let b = self.blocks.remove(pos);
                self.blocks.push(b);
            }
            return SetAccess::Hit;
        }
        if self.blocks.len() < self.ways {
            self.blocks.push(block);
            return SetAccess::MissFilled;
        }
        let victim_pos = match policy {
            // Both LRU and FIFO evict the front under their respective orders.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => 0,
            ReplacementPolicy::Random => rng.gen_range(0..self.blocks.len()),
        };
        let victim = self.blocks.remove(victim_pos);
        self.blocks.push(block);
        SetAccess::MissEvicted(victim)
    }

    pub(crate) fn flush(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn direct_mapped_set_always_evicts_on_conflict() {
        let mut set = CacheSet::new(1);
        let mut r = rng();
        assert_eq!(
            set.access(1, ReplacementPolicy::Lru, &mut r),
            SetAccess::MissFilled
        );
        assert_eq!(
            set.access(1, ReplacementPolicy::Lru, &mut r),
            SetAccess::Hit
        );
        assert_eq!(
            set.access(2, ReplacementPolicy::Lru, &mut r),
            SetAccess::MissEvicted(1)
        );
        assert!(set.contains(2));
        assert!(!set.contains(1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut set = CacheSet::new(2);
        let mut r = rng();
        set.access(1, ReplacementPolicy::Lru, &mut r);
        set.access(2, ReplacementPolicy::Lru, &mut r);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(
            set.access(1, ReplacementPolicy::Lru, &mut r),
            SetAccess::Hit
        );
        assert_eq!(
            set.access(3, ReplacementPolicy::Lru, &mut r),
            SetAccess::MissEvicted(2)
        );
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut set = CacheSet::new(2);
        let mut r = rng();
        set.access(1, ReplacementPolicy::Fifo, &mut r);
        set.access(2, ReplacementPolicy::Fifo, &mut r);
        // Hitting 1 does not save it: it is still the oldest insertion.
        assert_eq!(
            set.access(1, ReplacementPolicy::Fifo, &mut r),
            SetAccess::Hit
        );
        assert_eq!(
            set.access(3, ReplacementPolicy::Fifo, &mut r),
            SetAccess::MissEvicted(1)
        );
    }

    #[test]
    fn random_evicts_some_resident_block() {
        let mut set = CacheSet::new(4);
        let mut r = rng();
        for b in 0..4 {
            set.access(b, ReplacementPolicy::Random, &mut r);
        }
        match set.access(99, ReplacementPolicy::Random, &mut r) {
            SetAccess::MissEvicted(v) => assert!(v < 4),
            other => panic!("expected an eviction, got {other:?}"),
        }
        assert_eq!(set.resident().len(), 4);
        assert!(set.contains(99));
    }

    #[test]
    fn flush_empties_the_set() {
        let mut set = CacheSet::new(2);
        let mut r = rng();
        set.access(1, ReplacementPolicy::Lru, &mut r);
        set.flush();
        assert_eq!(set.resident().len(), 0);
        assert_eq!(
            set.access(1, ReplacementPolicy::Lru, &mut r),
            SetAccess::MissFilled
        );
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
