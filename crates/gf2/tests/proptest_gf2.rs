//! Property-based tests for the GF(2) linear-algebra kernel.
//!
//! These check the algebraic invariants that the XOR-indexing machinery relies
//! on: XOR is a group operation, null spaces characterize set conflicts,
//! canonical subspace bases are representation-independent, and the dimension
//! formulas hold.

use gf2::{count, random, BitMatrix, BitVec, Subspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a width in the interesting range and a value fitting it.
fn vec_strategy() -> impl Strategy<Value = BitVec> {
    (1usize..=24).prop_flat_map(|w| {
        (Just(w), 0u64..(1u64 << w)).prop_map(|(w, bits)| BitVec::from_u64(bits, w))
    })
}

/// Strategy producing two vectors of the same width.
fn vec_pair_strategy() -> impl Strategy<Value = (BitVec, BitVec)> {
    (1usize..=24).prop_flat_map(|w| {
        (
            (0u64..(1u64 << w)).prop_map(move |b| BitVec::from_u64(b, w)),
            (0u64..(1u64 << w)).prop_map(move |b| BitVec::from_u64(b, w)),
        )
    })
}

/// Strategy producing a random (n, m, seed) triple for matrix properties.
fn matrix_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=16).prop_flat_map(|n| (Just(n), 1usize..=n, any::<u64>()))
}

proptest! {
    #[test]
    fn xor_is_an_involution(v in vec_strategy()) {
        prop_assert!((v ^ v).is_zero());
        let zero = BitVec::zero(v.width());
        prop_assert_eq!(v ^ zero, v);
    }

    #[test]
    fn xor_commutes_and_weight_bounds((a, b) in vec_pair_strategy()) {
        prop_assert_eq!(a ^ b, b ^ a);
        prop_assert!((a ^ b).weight() <= a.weight() + b.weight());
        // Parity of the weight is additive over GF(2).
        prop_assert_eq!((a ^ b).weight() % 2, (a.weight() + b.weight()) % 2);
    }

    #[test]
    fn dot_product_is_bilinear((a, b) in vec_pair_strategy(), c_bits in any::<u64>()) {
        let c = BitVec::from_u64(c_bits, a.width());
        // <a ^ c, b> = <a, b> ^ <c, b>
        prop_assert_eq!((a ^ c).dot(b), a.dot(b) ^ c.dot(b));
    }

    #[test]
    fn set_bits_roundtrip(v in vec_strategy()) {
        let rebuilt = BitVec::with_bits(&v.set_bits().collect::<Vec<_>>(), v.width());
        prop_assert_eq!(rebuilt, v);
        prop_assert_eq!(v.set_bits().count(), v.weight());
    }

    #[test]
    fn mul_vec_is_linear((n, m, seed) in matrix_params(), a_bits in any::<u64>(), b_bits in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random::random_matrix(&mut rng, n, m);
        let a = BitVec::from_u64(a_bits, n);
        let b = BitVec::from_u64(b_bits, n);
        prop_assert_eq!(h.mul_vec(a ^ b), h.mul_vec(a) ^ h.mul_vec(b));
    }

    #[test]
    fn rank_is_bounded_and_transpose_invariant((n, m, seed) in matrix_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random::random_matrix(&mut rng, n, m);
        let r = h.rank();
        prop_assert!(r <= n.min(m));
        prop_assert_eq!(r, h.transpose().rank());
    }

    #[test]
    fn null_space_dimension_is_n_minus_rank((n, m, seed) in matrix_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random::random_matrix(&mut rng, n, m);
        let ns = h.null_space();
        prop_assert_eq!(ns.dim(), n - h.rank());
        // Every basis vector of the null space really maps to zero.
        for v in ns.basis() {
            prop_assert!(h.mul_vec(*v).is_zero());
        }
    }

    #[test]
    fn conflict_condition_matches_null_space(
        (n, m, seed) in matrix_params(),
        x_bits in any::<u64>(),
        y_bits in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random::random_full_rank_matrix(&mut rng, n, m);
        let ns = h.null_space();
        let x = BitVec::from_u64(x_bits, n);
        let y = BitVec::from_u64(y_bits, n);
        // Paper Eq. 2: x·H = y·H  <=>  (x ⊕ y) ∈ N(H)
        prop_assert_eq!(h.mul_vec(x) == h.mul_vec(y), ns.contains(x ^ y));
    }

    #[test]
    fn with_null_space_reconstructs_the_same_space((n, m, seed) in matrix_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random::random_full_rank_matrix(&mut rng, n, m);
        let ns = h.null_space();
        let h2 = BitMatrix::with_null_space(&ns).unwrap();
        prop_assert_eq!(h2.null_space(), ns);
        prop_assert!(h2.has_full_column_rank());
        prop_assert_eq!(h2.n_cols(), m);
    }

    #[test]
    fn subspace_canonicalization_is_stable((n, m, seed) in matrix_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random::random_subspace(&mut rng, n, m.min(n));
        // Rebuilding from shuffled/extended generator sets gives the same space.
        let mut gens: Vec<BitVec> = s.basis().to_vec();
        if gens.len() >= 2 {
            let extra = gens[0] ^ gens[1];
            gens.push(extra);
        }
        gens.reverse();
        let rebuilt = Subspace::from_generators(n, &gens);
        prop_assert_eq!(rebuilt, s);
    }

    #[test]
    fn dimension_formula_for_sum_and_intersection(seed in any::<u64>(), n in 3usize..=12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random::random_subspace(&mut rng, n, n / 2);
        let v = random::random_subspace(&mut rng, n, n / 3 + 1);
        let sum = u.sum(&v);
        let inter = u.intersection(&v);
        prop_assert_eq!(u.dim() + v.dim(), sum.dim() + inter.dim());
        prop_assert!(sum.contains_subspace(&u));
        prop_assert!(sum.contains_subspace(&v));
        prop_assert!(u.contains_subspace(&inter));
        prop_assert!(v.contains_subspace(&inter));
    }

    #[test]
    fn orthogonal_complement_is_involutive(seed in any::<u64>(), n in 2usize..=14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random::random_subspace(&mut rng, n, n / 2);
        let c = s.orthogonal_complement();
        prop_assert_eq!(c.dim(), n - s.dim());
        prop_assert_eq!(c.orthogonal_complement(), s);
    }

    #[test]
    fn subspace_vectors_are_members_and_distinct(seed in any::<u64>(), n in 2usize..=10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random::random_subspace(&mut rng, n, (n / 2).min(6));
        let vectors: Vec<BitVec> = s.vectors().collect();
        prop_assert_eq!(vectors.len(), 1 << s.dim());
        let distinct: std::collections::HashSet<_> = vectors.iter().copied().collect();
        prop_assert_eq!(distinct.len(), vectors.len());
        for v in vectors {
            prop_assert!(s.contains(v));
        }
    }

    #[test]
    fn hyperplanes_have_codimension_one_in_parent(seed in any::<u64>(), n in 2usize..=10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = (n / 2).clamp(1, 5);
        let s = random::random_subspace(&mut rng, n, dim);
        let hps = s.hyperplanes();
        prop_assert_eq!(hps.len(), (1usize << dim) - 1);
        for h in hps {
            prop_assert_eq!(h.dim(), dim - 1);
            prop_assert!(s.contains_subspace(&h));
            prop_assert_eq!(s.intersection_dim(&h), dim - 1);
        }
    }

    #[test]
    fn gaussian_binomial_symmetry(n in 1u32..=20, k_frac in 0.0f64..1.0) {
        let k = (k_frac * n as f64) as u32;
        let a = count::gaussian_binomial(n, k);
        let b = count::gaussian_binomial(n, n - k);
        prop_assert!((a / b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_based_matrix_has_identity_low_rows(seed in any::<u64>(), n in 4usize..=16) {
        let m = n / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let ns = random::random_permutation_null_space(&mut rng, n, m);
        let p = BitMatrix::permutation_based_with_null_space(&ns).unwrap();
        prop_assert!(p.is_permutation_based());
        prop_assert_eq!(p.null_space(), ns);
        for r in 0..m {
            prop_assert_eq!(p.row(r), BitVec::unit(r, m));
        }
    }
}

proptest! {
    #[test]
    fn packed_basis_agrees_with_subspace(seed in any::<u64>(), n in 2usize..=14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = (seed as usize) % (n + 1);
        let space = random::random_subspace(&mut rng, n, dim);
        let packed = gf2::PackedBasis::from_subspace(&space);
        prop_assert_eq!(packed.dim(), space.dim());
        prop_assert_eq!(packed.to_subspace(), space.clone());
        // Membership and reduction agree on random probes.
        for _ in 0..32 {
            let v = random::random_vector(&mut rng, n);
            prop_assert_eq!(packed.contains(v.as_u64()), space.contains(v));
            prop_assert_eq!(packed.reduce(v.as_u64()), space.reduce(v).as_u64());
        }
        // Incremental insertion from scratch reproduces the canonical form.
        let mut incremental = gf2::PackedBasis::trivial(n);
        for b in space.basis() {
            prop_assert!(incremental.insert(b.as_u64()));
        }
        prop_assert_eq!(incremental, packed);
    }

    #[test]
    fn packed_replace_matches_subspace_rebuild(seed in any::<u64>(), n in 3usize..=12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 1 + (seed as usize) % (n - 1);
        let space = random::random_subspace(&mut rng, n, dim);
        let packed = gf2::PackedBasis::from_subspace(&space);
        let index = (seed as usize) % dim;
        let direction = random::random_nonzero_vector(&mut rng, n);
        // Reference: rebuild from the surviving generators plus the direction.
        let mut gens: Vec<BitVec> = space.basis().to_vec();
        gens.remove(index);
        let remaining = Subspace::from_generators(n, &gens);
        gens.push(direction);
        let rebuilt = Subspace::from_generators(n, &gens);
        match packed.replaced(index, direction.as_u64()) {
            Some(swapped) => {
                prop_assert_eq!(swapped.dim(), dim);
                prop_assert_eq!(swapped.to_subspace(), rebuilt);
                prop_assert!(!remaining.contains(direction));
            }
            None => prop_assert!(remaining.contains(direction)),
        }
    }

    #[test]
    fn permutation_admission_matches_explicit_intersection(
        seed in any::<u64>(),
        n in 2usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = (seed as usize) % (n + 1);
        let space = random::random_subspace(&mut rng, n, dim);
        for m in 0..=n {
            let low = Subspace::standard_span(n, 0..m);
            prop_assert_eq!(
                space.admits_permutation_based_function(m),
                space.intersection(&low).is_trivial(),
                "n={} m={} space={}", n, m, &space
            );
        }
        // The packed check agrees with the subspace check everywhere.
        let packed = gf2::PackedBasis::from_subspace(&space);
        for m in 0..=n {
            prop_assert_eq!(
                packed.admits_permutation_based(m),
                space.admits_permutation_based_function(m)
            );
        }
    }

    #[test]
    fn packed_hyperplanes_match_subspace_hyperplanes_in_order(
        seed in any::<u64>(),
        n in 2usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = ((seed as usize) % n).clamp(1, 6);
        let space = random::random_subspace(&mut rng, n, dim);
        let packed = gf2::PackedBasis::from_subspace(&space);
        let reference = space.hyperplanes();
        let got: Vec<gf2::PackedBasis> = packed.hyperplanes().collect();
        prop_assert_eq!(got.len(), reference.len());
        prop_assert_eq!(packed.hyperplanes().len(), reference.len());
        for (i, (p, r)) in got.iter().zip(&reference).enumerate() {
            // Same subspace, same canonical rows, same enumeration position —
            // and already canonical without any re-elimination.
            prop_assert_eq!(p, &gf2::PackedBasis::from_subspace(r), "hyperplane {}", i);
            prop_assert!(packed.contains_subspace(p));
            prop_assert_eq!(p.dim(), dim - 1);
        }
    }

    #[test]
    fn packed_extended_round_trips_through_hyperplanes(
        seed in any::<u64>(),
        n in 2usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = ((seed as usize) % n).clamp(1, 6);
        let space = random::random_subspace(&mut rng, n, dim);
        let packed = gf2::PackedBasis::from_subspace(&space);
        for hyper in packed.hyperplanes() {
            // Extending a hyperplane by any parent member outside it recovers
            // the parent exactly (the move the neighbourhood generator makes
            // with pool directions).
            let outside = packed
                .vectors()
                .find(|&v| !hyper.contains(v))
                .expect("a strict subspace misses some parent vector");
            prop_assert_eq!(hyper.extended(outside), packed.clone());
            // Extending by a hyperplane member (a non-zero one when the
            // hyperplane has any) changes nothing.
            let inside = hyper.vectors().find(|&v| v != 0).unwrap_or(0);
            prop_assert_eq!(hyper.extended(inside), hyper.clone());
        }
        // extended agrees with the Subspace-level construction on random
        // directions.
        for _ in 0..16 {
            let v = random::random_vector(&mut rng, n);
            prop_assert_eq!(
                packed.extended(v.as_u64()).to_subspace(),
                space.extended(v)
            );
        }
    }

    #[test]
    fn canonical_keys_are_injective_on_subspaces(
        seed in any::<u64>(),
        n in 2usize..=12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::random_subspace(&mut rng, n, (seed as usize) % (n + 1));
        let b = random::random_subspace(&mut rng, n, (seed as usize / 7) % (n + 1));
        let ka = gf2::PackedBasis::from_subspace(&a).canonical_key();
        let kb = gf2::PackedBasis::from_subspace(&b).canonical_key();
        prop_assert_eq!(a == b, ka == kb);
        prop_assert_eq!(ka.as_words()[0] as usize, n);
    }
}

/// Body of `sliced_member_mask_matches_scalar_contains`, kept outside the
/// `proptest!` macro (its expansion depth scales with statement count).
fn check_sliced_mask_matches_contains(seed: u64, n: usize, lanes: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<gf2::PackedBasis> = (0..lanes)
        .map(|i| random::random_subspace(&mut rng, n, (seed as usize + i) % (n + 1)).to_packed())
        .collect();
    let block = gf2::SlicedBlock::from_bases(bases.iter());
    if block.lanes() != lanes {
        return Err(format!("lanes {} != {lanes}", block.lanes()));
    }
    for _ in 0..64 {
        let v = random::random_vector(&mut rng, n).as_u64();
        let expect = bases
            .iter()
            .enumerate()
            .fold(0u64, |m, (j, b)| m | (u64::from(b.contains(v)) << j));
        if block.member_mask(v) != expect {
            return Err(format!(
                "v={v:#x}: mask {:#x} != contains fold {expect:#x}",
                block.member_mask(v)
            ));
        }
    }
    // The zero vector is a member of every lane.
    if block.member_mask(0) != block.lane_mask() {
        return Err("zero vector must be in every lane".to_string());
    }
    Ok(())
}

proptest! {
    // A sliced block's word-parallel membership mask agrees lane-for-lane
    // with the scalar `PackedBasis::contains` on every probed vector, for
    // random blocks of mixed dimensions and any lane count up to the limit.
    #[test]
    fn sliced_member_mask_matches_scalar_contains(
        seed in any::<u64>(),
        n in 1usize..=16,
        lanes in 1usize..=gf2::SLICED_LANES,
    ) {
        prop_assert_eq!(check_sliced_mask_matches_contains(seed, n, lanes), Ok(()));
    }
}
