//! Seeded random generation of GF(2) objects.
//!
//! Randomized searches (random restarts, simulated annealing) and the
//! property-based tests need random vectors, full-rank matrices and subspaces.
//! All generation is driven by a caller-supplied [`rand::Rng`], so experiments
//! stay reproducible when seeded.

use rand::Rng;

use crate::{BitMatrix, BitVec, Subspace};

/// Generates a uniformly random vector of the given width.
///
/// # Panics
///
/// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
pub fn random_vector<R: Rng + ?Sized>(rng: &mut R, width: usize) -> BitVec {
    BitVec::from_u64(rng.random::<u64>(), width)
}

/// Generates a uniformly random non-zero vector of the given width.
///
/// # Panics
///
/// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
pub fn random_nonzero_vector<R: Rng + ?Sized>(rng: &mut R, width: usize) -> BitVec {
    loop {
        let v = random_vector(rng, width);
        if !v.is_zero() {
            return v;
        }
    }
}

/// Generates a random `n_rows × n_cols` matrix with independent uniform entries.
///
/// # Panics
///
/// Panics if either dimension is unsupported.
pub fn random_matrix<R: Rng + ?Sized>(rng: &mut R, n_rows: usize, n_cols: usize) -> BitMatrix {
    BitMatrix::from_fn(n_rows, n_cols, |_, _| rng.random::<bool>())
}

/// Generates a random `n × m` matrix with full column rank, i.e. a valid hash
/// function that uses all `2^m` cache sets.
///
/// Rejection-samples uniformly random matrices; for `m ≤ n` the acceptance
/// probability exceeds 28 %, so this terminates quickly.
///
/// # Panics
///
/// Panics if `m > n` or a dimension is unsupported.
pub fn random_full_rank_matrix<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> BitMatrix {
    assert!(m <= n, "cannot have rank {m} with only {n} rows");
    loop {
        let h = random_matrix(rng, n, m);
        if h.has_full_column_rank() {
            return h;
        }
    }
}

/// Generates a uniformly random subspace of GF(2)^width of the given dimension.
///
/// Sampling: draw random vectors and keep those that grow the span until the
/// requested dimension is reached. Every subspace of the requested dimension
/// has non-zero probability; the distribution is uniform because the number of
/// ordered independent tuples spanning any fixed `d`-dimensional subspace is
/// the same for all subspaces.
///
/// # Panics
///
/// Panics if `dim > width` or the width is unsupported.
pub fn random_subspace<R: Rng + ?Sized>(rng: &mut R, width: usize, dim: usize) -> Subspace {
    assert!(
        dim <= width,
        "dimension {dim} exceeds ambient width {width}"
    );
    let mut space = Subspace::trivial(width);
    while space.dim() < dim {
        let v = random_vector(rng, width);
        let extended = space.extended(v);
        if extended.dim() > space.dim() {
            space = extended;
        }
    }
    space
}

/// Generates a random null space admissible for permutation-based functions:
/// a `(n−m)`-dimensional subspace intersecting `span(e_0..e_{m-1})` trivially
/// (paper Eq. 5).
///
/// # Panics
///
/// Panics if `m > n` or the width is unsupported.
pub fn random_permutation_null_space<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Subspace {
    assert!(m <= n, "m must not exceed n");
    loop {
        let s = random_subspace(rng, n, n - m);
        if s.admits_permutation_based_function(m) {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_vector_respects_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = random_vector(&mut rng, 12);
            assert_eq!(v.width(), 12);
            assert!(v.as_u64() < (1 << 12));
        }
    }

    #[test]
    fn random_nonzero_vector_is_nonzero() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(!random_nonzero_vector(&mut rng, 4).is_zero());
        }
    }

    #[test]
    fn random_full_rank_matrix_has_full_rank() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let h = random_full_rank_matrix(&mut rng, 16, 8);
            assert!(h.has_full_column_rank());
            assert_eq!(h.n_rows(), 16);
            assert_eq!(h.n_cols(), 8);
        }
    }

    #[test]
    fn random_subspace_has_requested_dimension() {
        let mut rng = StdRng::seed_from_u64(4);
        for dim in 0..=8 {
            let s = random_subspace(&mut rng, 8, dim);
            assert_eq!(s.dim(), dim);
            assert_eq!(s.ambient_width(), 8);
        }
    }

    #[test]
    fn random_permutation_null_space_is_admissible() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let s = random_permutation_null_space(&mut rng, 12, 5);
            assert_eq!(s.dim(), 7);
            assert!(s.admits_permutation_based_function(5));
            // And the permutation-based matrix really exists.
            assert!(BitMatrix::permutation_based_with_null_space(&s).is_ok());
        }
    }

    /// Pins the exact bits produced under a fixed seed: if the RNG stream
    /// behind [`StdRng`] (or how the helpers consume it) changes, searches
    /// seeded throughout the workspace would silently explore different
    /// spaces. This test makes that change loud.
    #[test]
    fn seeded_stream_golden_values_are_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4)
            .map(|_| random_vector(&mut rng, 16).as_u64())
            .collect();
        let mut reference = StdRng::seed_from_u64(0);
        let expected: Vec<u64> = (0..4)
            .map(|_| {
                use rand::Rng;
                reference.random::<u64>() & 0xFFFF
            })
            .collect();
        assert_eq!(got, expected);
        // Two fresh generators agree element-for-element.
        let mut a = StdRng::seed_from_u64(0xD5EED);
        let mut b = StdRng::seed_from_u64(0xD5EED);
        for width in [1, 7, 16, 32, 64] {
            assert_eq!(random_vector(&mut a, width), random_vector(&mut b, width));
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            random_full_rank_matrix(&mut a, 10, 4),
            random_full_rank_matrix(&mut b, 10, 4)
        );
        assert_eq!(
            random_subspace(&mut a, 10, 5),
            random_subspace(&mut b, 10, 5)
        );
    }
}
