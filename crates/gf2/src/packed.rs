//! Packed word-level subspace bases for hot-path evaluation.
//!
//! [`Subspace`] stores a canonical basis of [`BitVec`]s, which is convenient
//! for correctness-oriented code but pays for width bookkeeping on every
//! operation. The miss-estimation hot path (paper Eq. 4) reduces millions of
//! raw `u64` conflict vectors against the same basis, so this module provides
//! [`PackedBasis`]: the same reduced-row-echelon basis packed into bare `u64`
//! words, with
//!
//! * a branch-light [`PackedBasis::reduce`] / [`PackedBasis::contains`]
//!   membership test,
//! * *incremental* basis updates — [`PackedBasis::insert`] /
//!   [`PackedBasis::extended`] extend the span by one generator and
//!   [`PackedBasis::replaced`] swaps one basis row for a new direction, both
//!   restoring canonical form without re-running a full Gaussian elimination,
//! * *incremental* hyperplane enumeration — [`PackedBasis::hyperplanes`]
//!   produces every codimension-1 subspace by removing one (combined)
//!   generator, again without re-elimination, which is what the search's
//!   neighbourhood generation iterates over, and
//! * Gray-code enumeration of the subspace ([`PackedBasis::vectors`]) and of
//!   any coset ([`PackedBasis::coset`]), so consecutive enumerated vectors
//!   differ by a single row XOR.
//!
//! A `PackedBasis` in canonical form is a unique representative of its
//! subspace, so derived equality is subspace equality, exactly as for
//! [`Subspace`], and [`PackedBasis::canonical_key`] yields a compact boxed
//! word slice suitable as a hash-map key for memoization.

use crate::{BitVec, Gf2Error, Subspace};

/// A subspace of GF(2)^width (width ≤ 64) as a packed reduced-row-echelon
/// basis of `u64` words.
///
/// Rows are kept sorted by strictly decreasing leading (pivot) bit, and every
/// pivot bit occurs in exactly one row — the same canonical form as
/// [`Subspace`], so conversions in either direction preserve identity.
///
/// # Example
///
/// ```
/// use gf2::PackedBasis;
///
/// let mut b = PackedBasis::trivial(4);
/// assert!(b.insert(0b0011));
/// assert!(b.insert(0b0110));
/// assert!(!b.insert(0b0101)); // dependent on the first two
/// assert_eq!(b.dim(), 2);
/// assert!(b.contains(0b0101));
/// assert!(!b.contains(0b1000));
/// ```
/// The derived ordering compares the packed rows lexicographically (then the
/// width); it is an arbitrary but total and deterministic order, suitable for
/// sorted containers and reproducible tie-breaking.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedBasis {
    /// RREF rows, sorted by strictly decreasing leading bit.
    rows: Vec<u64>,
    width: usize,
}

/// A compact, owned map key identifying a [`PackedBasis`] (and therefore a
/// subspace): the ambient width followed by the canonical packed rows, boxed
/// into a single `[u64]` allocation.
///
/// Because the packed rows are a unique canonical representative of the
/// subspace, two keys compare (and hash) equal exactly when the subspaces are
/// equal. Keys are cheaper to hash and store than a `Subspace` clone, which is
/// what makes them the memoization currency of the evaluation engine.
///
/// # Example
///
/// ```
/// use gf2::PackedBasis;
///
/// let a = PackedBasis::standard_span(8, [3usize, 5]);
/// let b = PackedBasis::standard_span(8, [5usize, 3]);
/// assert_eq!(a.canonical_key(), b.canonical_key());
/// assert_ne!(
///     a.canonical_key(),
///     PackedBasis::standard_span(8, [3usize, 6]).canonical_key()
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(Box<[u64]>);

impl CanonicalKey {
    /// The raw key words: the ambient width followed by the canonical rows.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.0
    }

    /// A stable 64-bit hash of the key, equal to
    /// [`hash_key_words`]`(self.as_words())` and to the owning basis's
    /// [`PackedBasis::key_hash`]. Intended for shard selection in concurrent
    /// memo tables, where the hash must be computable from a borrowed
    /// `[u64]` probe without allocating the owned key first.
    #[must_use]
    pub fn hash64(&self) -> u64 {
        hash_key_words(&self.0)
    }
}

/// Hashes a canonical key's words (ambient width followed by the canonical
/// rows) into a stable, well-mixed 64 bits.
///
/// This is the shard-selection hash of concurrent memo tables keyed by
/// [`CanonicalKey`]: the borrowed probe path ([`PackedBasis::key_words`]) and
/// the owned key ([`CanonicalKey::hash64`]) hash identically, so a shard can
/// be chosen without allocating. The function is a SplitMix64-style word mixer
/// — deterministic across processes and platforms (unlike `std`'s seeded
/// `SipHash`), which keeps shard assignment reproducible.
#[must_use]
pub fn hash_key_words(words: &[u64]) -> u64 {
    // Seed on the length so prefixes hash differently, then fold each word in
    // through the SplitMix64 finalizer (invertible, full avalanche).
    let mut h = (words.len() as u64) ^ 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        h = splitmix64(h.rotate_left(5) ^ w);
    }
    h
}

/// The SplitMix64 finalizer: a bijective full-avalanche mix of one word.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed collections can be probed with a borrowed `[u64]` produced by
/// [`PackedBasis::key_words`], so a lookup hit never allocates; the owned
/// boxed key is only built ([`PackedBasis::canonical_key`]) when an entry is
/// actually inserted.
impl std::borrow::Borrow<[u64]> for CanonicalKey {
    fn borrow(&self) -> &[u64] {
        &self.0
    }
}

impl PackedBasis {
    /// The trivial subspace `{0}` of GF(2)^width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
    #[must_use]
    pub fn trivial(width: usize) -> Self {
        let _ = BitVec::zero(width); // validates the width
        PackedBasis {
            rows: Vec::new(),
            width,
        }
    }

    /// The span of the standard basis vectors `e_k` for the given bit indices
    /// — the packed counterpart of [`Subspace::standard_span`].
    ///
    /// Unit vectors are their own canonical rows, so construction is a handful
    /// of incremental inserts with no elimination work.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= width` or the width is unsupported.
    #[must_use]
    pub fn standard_span(width: usize, bits: impl IntoIterator<Item = usize>) -> Self {
        let mut out = Self::trivial(width);
        for bit in bits {
            assert!(bit < width, "bit index {bit} outside GF(2)^{width}");
            out.insert(1u64 << bit);
        }
        out
    }

    /// Reconstructs a basis from rows that are already in canonical RREF
    /// form — the deserialization counterpart of [`PackedBasis::rows`].
    ///
    /// The rows are *validated*, not re-eliminated: each must be non-zero and
    /// lie inside the ambient width, leading (pivot) bits must be strictly
    /// decreasing, and every pivot bit must be zero in all other rows. The
    /// row vector is taken over as the basis storage, so deserializing a
    /// candidate costs no allocation beyond the vector the caller already
    /// read its words into.
    ///
    /// # Errors
    ///
    /// [`Gf2Error::UnsupportedWidth`] for a width outside `1..=64`, and
    /// [`Gf2Error::Impossible`] when the rows are not a canonical RREF basis.
    pub fn try_from_rows(width: usize, rows: Vec<u64>) -> Result<Self, Gf2Error> {
        if width == 0 || width > BitVec::MAX_WIDTH {
            return Err(Gf2Error::UnsupportedWidth(width));
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut pivot_mask = 0u64;
        let mut last_pivot = u32::MAX;
        for &row in &rows {
            if row == 0 {
                return Err(Gf2Error::Impossible("zero basis row".to_string()));
            }
            if row & !mask != 0 {
                return Err(Gf2Error::Impossible(format!(
                    "row {row:#x} has bits outside GF(2)^{width}"
                )));
            }
            let pivot = 63 - row.leading_zeros();
            if last_pivot != u32::MAX && pivot >= last_pivot {
                return Err(Gf2Error::Impossible(
                    "rows not sorted by strictly decreasing pivot".to_string(),
                ));
            }
            last_pivot = pivot;
            pivot_mask |= 1u64 << pivot;
        }
        // RREF: below its own leading 1, a row may only have 1s at non-pivot
        // columns. One masked check per row covers all pairs at once.
        for &row in &rows {
            let own_pivot = 1u64 << (63 - row.leading_zeros());
            if row & (pivot_mask ^ own_pivot) != 0 {
                return Err(Gf2Error::Impossible(
                    "row has a 1 in another row's pivot column".to_string(),
                ));
            }
        }
        Ok(PackedBasis { rows, width })
    }

    /// Packs the canonical basis of a [`Subspace`].
    #[must_use]
    pub fn from_subspace(space: &Subspace) -> Self {
        PackedBasis {
            rows: space.basis().iter().map(|b| b.as_u64()).collect(),
            width: space.ambient_width(),
        }
    }

    /// Converts back to a [`Subspace`] without re-canonicalizing (the packed
    /// basis already is canonical).
    #[must_use]
    pub fn to_subspace(&self) -> Subspace {
        let gens: Vec<BitVec> = self
            .rows
            .iter()
            .map(|&r| BitVec::from_u64(r, self.width))
            .collect();
        Subspace::from_generators(self.width, &gens)
    }

    /// Width of the ambient space GF(2)^n.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Dimension of the subspace.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// The packed canonical rows, sorted by strictly decreasing leading bit.
    #[must_use]
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Reduces `v` modulo the subspace: zero exactly when `v` is a member.
    #[must_use]
    pub fn reduce(&self, mut v: u64) -> u64 {
        // Each row's pivot occurs in no other row, so one pass fully reduces.
        for &row in &self.rows {
            let pivot = 1u64 << (63 - row.leading_zeros());
            if v & pivot != 0 {
                v ^= row;
            }
        }
        v
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        // Bits outside the ambient width are never members.
        if v & !self.low_mask() != 0 {
            return false;
        }
        self.reduce(v) == 0
    }

    /// `true` when every vector of `other` lies in `self`.
    ///
    /// # Panics
    ///
    /// Panics if the ambient widths differ.
    #[must_use]
    pub fn contains_subspace(&self, other: &PackedBasis) -> bool {
        assert_eq!(self.width, other.width, "ambient width mismatch");
        other.rows.iter().all(|&r| self.reduce(r) == 0)
    }

    /// The compact memoization key of this basis: width plus canonical rows in
    /// one boxed `[u64]`. See [`CanonicalKey`].
    #[must_use]
    pub fn canonical_key(&self) -> CanonicalKey {
        let mut words = Vec::with_capacity(self.rows.len() + 1);
        words.push(self.width as u64);
        words.extend_from_slice(&self.rows);
        CanonicalKey(words.into_boxed_slice())
    }

    /// Writes this basis's key words (the ambient width, then the canonical
    /// rows) into `buf` and returns the filled prefix — the borrowed form of
    /// [`PackedBasis::canonical_key`], equal (and hashing equal) to the owned
    /// key's words via `Borrow<[u64]>`. A `[u64; 65]` buffer always suffices
    /// (width ≤ 64 ⇒ dim ≤ 64), so map probes on the search hot path never
    /// allocate.
    pub fn key_words<'a>(&self, buf: &'a mut [u64; 65]) -> &'a [u64] {
        buf[0] = self.width as u64;
        buf[1..=self.rows.len()].copy_from_slice(&self.rows);
        &buf[..self.rows.len() + 1]
    }

    /// The stable 64-bit hash of this basis's canonical key, computed without
    /// materializing the key — equal to
    /// [`CanonicalKey::hash64`]`()` of [`PackedBasis::canonical_key`] and to
    /// [`hash_key_words`] over [`PackedBasis::key_words`]. This is what a
    /// sharded memo uses to pick a shard allocation-free.
    #[must_use]
    pub fn key_hash(&self) -> u64 {
        let mut h = ((self.rows.len() + 1) as u64) ^ 0x9E37_79B9_7F4A_7C15;
        h = splitmix64(h.rotate_left(5) ^ self.width as u64);
        for &row in &self.rows {
            h = splitmix64(h.rotate_left(5) ^ row);
        }
        h
    }

    /// `true` when this subspace intersects `span(e_0, …, e_{m-1})` only in
    /// the zero vector — the defining property (Eq. 5 of the paper) of the
    /// null space of a permutation-based hash function.
    ///
    /// Evaluated as a projected-rank test: the intersection with the low span
    /// is trivial exactly when projecting the rows onto the high bits `m..n`
    /// keeps them linearly independent (a dependency among the projections is
    /// a non-zero member supported on the low bits, and vice versa).
    #[must_use]
    pub fn admits_permutation_based(&self, m: usize) -> bool {
        if self.rows.is_empty() {
            return true;
        }
        let high_mask = if m >= 64 { 0 } else { u64::MAX << m };
        let mut projected = PackedBasis::trivial(self.width);
        self.rows.iter().all(|&r| projected.insert(r & high_mask))
    }

    /// `true` when the subspace is spanned by standard basis vectors — the
    /// null-space shape of a bit-selecting function.
    #[must_use]
    pub fn is_coordinate_subspace(&self) -> bool {
        self.rows.iter().all(|r| r.count_ones() == 1)
    }

    fn low_mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Extends the span by one generator, restoring canonical form
    /// incrementally (no full re-elimination).
    ///
    /// Returns `true` when the dimension grew, `false` when `v` was already in
    /// the span.
    ///
    /// # Panics
    ///
    /// Panics if `v` has bits outside the ambient width.
    pub fn insert(&mut self, v: u64) -> bool {
        assert_eq!(
            v & !self.low_mask(),
            0,
            "generator has bits outside GF(2)^{}",
            self.width
        );
        let remainder = self.reduce(v);
        if remainder == 0 {
            return false;
        }
        // The remainder has zeros at every existing pivot, so it becomes a new
        // row as-is; back-substitute its pivot out of the other rows, then
        // insert at the position that keeps rows sorted by decreasing pivot.
        let pivot_bit = 63 - remainder.leading_zeros();
        let pivot = 1u64 << pivot_bit;
        for row in &mut self.rows {
            if *row & pivot != 0 {
                *row ^= remainder;
            }
        }
        let pos = self
            .rows
            .iter()
            .position(|&row| row < remainder)
            .unwrap_or(self.rows.len());
        self.rows.insert(pos, remainder);
        true
    }

    /// Span of this subspace and one extra generator — the owned counterpart
    /// of [`PackedBasis::insert`], mirroring [`Subspace::extended`].
    ///
    /// When `v` already lies in the span the result equals `self`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has bits outside the ambient width.
    #[must_use]
    pub fn extended(&self, v: u64) -> Self {
        let mut out = self.clone();
        out.insert(v);
        out
    }

    /// Enumerates all `2^dim − 1` hyperplanes (subspaces of dimension
    /// `dim − 1`) of this subspace, each already in canonical form.
    ///
    /// Every non-zero linear functional over the basis rows determines one
    /// hyperplane, and the enumeration visits functionals in increasing
    /// order, matching [`Subspace::hyperplanes`] value-for-value and
    /// order-for-order. Each hyperplane is produced *incrementally*: the
    /// selected row with the smallest pivot is XOR-ed into the other selected
    /// rows and removed. Because that row is zero above its own pivot and
    /// zero at every other pivot, the remaining rows keep their leading bits
    /// and stay reduced — no re-elimination is ever needed.
    #[must_use]
    pub fn hyperplanes(&self) -> PackedHyperplanes<'_> {
        PackedHyperplanes {
            basis: self,
            functional: 1,
            count: 1u128 << self.rows.len(),
        }
    }

    /// The basis with row `index` removed — a canonical basis of a hyperplane
    /// of this subspace.
    ///
    /// Removing a row of an RREF basis leaves the remaining rows in RREF
    /// (every pivot column is zero in all other rows), so no re-elimination is
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    #[must_use]
    pub fn without_row(&self, index: usize) -> Self {
        assert!(index < self.rows.len(), "row index {index} out of range");
        let mut rows = self.rows.clone();
        rows.remove(index);
        PackedBasis {
            rows,
            width: self.width,
        }
    }

    /// Replaces the generator at `index` with direction `v`, preserving the
    /// dimension: returns the span of the remaining rows plus `v`, or `None`
    /// when `v` already lies in that remaining span (which would drop the
    /// dimension).
    ///
    /// This is the one-generator-delta move of the null-space search: a
    /// neighbour of `N` is `(hyperplane of N) ⊕ span(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()` or `v` has bits outside the width.
    #[must_use]
    pub fn replaced(&self, index: usize, v: u64) -> Option<Self> {
        let mut out = self.without_row(index);
        if out.insert(v) {
            Some(out)
        } else {
            None
        }
    }

    /// Gray-code enumeration of all `2^dim` vectors, starting with zero.
    #[must_use]
    pub fn vectors(&self) -> PackedVectors<'_> {
        self.coset(0)
    }

    /// Gray-code enumeration of the coset `offset ⊕ span(self)`, starting with
    /// `offset`.
    ///
    /// Consecutive vectors differ by a single basis row, so each step is one
    /// XOR.
    #[must_use]
    pub fn coset(&self, offset: u64) -> PackedVectors<'_> {
        PackedVectors {
            rows: &self.rows,
            index: 0,
            count: 1u128 << self.rows.len(),
            current: offset,
        }
    }
}

impl From<&Subspace> for PackedBasis {
    fn from(space: &Subspace) -> Self {
        PackedBasis::from_subspace(space)
    }
}

/// Iterator over the vectors of a [`PackedBasis`] coset, produced by
/// [`PackedBasis::vectors`] / [`PackedBasis::coset`].
#[derive(Debug, Clone)]
pub struct PackedVectors<'a> {
    rows: &'a [u64],
    index: u128,
    count: u128,
    current: u64,
}

impl Iterator for PackedVectors<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.index >= self.count {
            return None;
        }
        if self.index > 0 {
            // Gray code: between index-1 and index exactly one coordinate flips.
            let prev_gray = (self.index - 1) ^ ((self.index - 1) >> 1);
            let gray = self.index ^ (self.index >> 1);
            let changed = (prev_gray ^ gray).trailing_zeros() as usize;
            self.current ^= self.rows[changed];
        }
        self.index += 1;
        Some(self.current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.count - self.index) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PackedVectors<'_> {}

/// Iterator over the hyperplanes of a [`PackedBasis`], produced by
/// [`PackedBasis::hyperplanes`].
#[derive(Debug, Clone)]
pub struct PackedHyperplanes<'a> {
    basis: &'a PackedBasis,
    functional: u128,
    count: u128,
}

impl Iterator for PackedHyperplanes<'_> {
    type Item = PackedBasis;

    fn next(&mut self) -> Option<PackedBasis> {
        if self.functional >= self.count {
            return None;
        }
        let f = self.functional as u64;
        self.functional += 1;
        let rows = &self.basis.rows;
        // Among the rows the functional selects, XOR the one with the largest
        // index (= smallest pivot, rows being sorted by decreasing pivot) into
        // the others and drop it. The combined rows keep their own leading
        // bits (row j is zero above its pivot) and stay reduced (row j is zero
        // at every other pivot), so the result is canonical as-is.
        let j = 63 - f.leading_zeros() as usize;
        let mut out = Vec::with_capacity(rows.len() - 1);
        for (i, &row) in rows.iter().enumerate() {
            if i == j {
                continue;
            }
            if (f >> i) & 1 == 1 {
                out.push(row ^ rows[j]);
            } else {
                out.push(row);
            }
        }
        Some(PackedBasis {
            rows: out,
            width: self.basis.width,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.count - self.functional) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for PackedHyperplanes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn subspace(width: usize, gens: &[u64]) -> Subspace {
        let gens: Vec<BitVec> = gens.iter().map(|&g| BitVec::from_u64(g, width)).collect();
        Subspace::from_generators(width, &gens)
    }

    #[test]
    fn roundtrip_preserves_identity() {
        let s = subspace(6, &[0b000111, 0b011100, 0b110000]);
        let packed = PackedBasis::from_subspace(&s);
        assert_eq!(packed.dim(), s.dim());
        assert_eq!(packed.width(), 6);
        assert_eq!(packed.to_subspace(), s);
    }

    #[test]
    fn membership_matches_subspace() {
        let s = subspace(8, &[0b0011_0011, 0b0101_0101, 0b1000_0001]);
        let packed = PackedBasis::from_subspace(&s);
        for bits in 0..256u64 {
            assert_eq!(
                packed.contains(bits),
                s.contains(BitVec::from_u64(bits, 8)),
                "vector {bits:08b}"
            );
            assert_eq!(
                packed.reduce(bits),
                s.reduce(BitVec::from_u64(bits, 8)).as_u64()
            );
        }
    }

    #[test]
    fn contains_rejects_out_of_width_bits() {
        let packed = PackedBasis::from_subspace(&Subspace::full(4));
        assert!(packed.contains(0b1111));
        assert!(!packed.contains(0b1_0000));
    }

    #[test]
    fn incremental_insert_matches_batch_construction() {
        let gens = [0b1100u64, 0b0110, 0b1010, 0b0001, 0b1111];
        let mut packed = PackedBasis::trivial(4);
        for &g in &gens {
            packed.insert(g);
        }
        let batch = PackedBasis::from_subspace(&subspace(4, &gens));
        assert_eq!(packed, batch);
        // Canonical: rows strictly decreasing, unique pivots.
        assert!(packed.rows().windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn insert_reports_dimension_growth() {
        let mut packed = PackedBasis::trivial(5);
        assert!(packed.insert(0b00011));
        assert!(packed.insert(0b00110));
        assert!(!packed.insert(0b00101)); // dependent
        assert!(!packed.insert(0));
        assert_eq!(packed.dim(), 2);
    }

    #[test]
    fn without_row_is_a_hyperplane_in_canonical_form() {
        let s = subspace(8, &[0b0000_1111, 0b1111_0000, 0b1010_1010]);
        let packed = PackedBasis::from_subspace(&s);
        for i in 0..packed.dim() {
            let hyper = packed.without_row(i);
            assert_eq!(hyper.dim(), packed.dim() - 1);
            // Canonical form survives the removal untouched.
            assert_eq!(
                hyper,
                PackedBasis::from_subspace(&hyper.to_subspace()),
                "row {i}"
            );
            for v in hyper.vectors() {
                assert!(packed.contains(v));
            }
        }
    }

    #[test]
    fn replaced_swaps_one_dimension() {
        let s = subspace(6, &[0b000011, 0b001100, 0b110000]);
        let packed = PackedBasis::from_subspace(&s);
        let swapped = packed.replaced(1, 0b000100).expect("independent direction");
        assert_eq!(swapped.dim(), 3);
        assert!(swapped.contains(0b000100));
        // Replacing with a vector of the remaining span would drop the
        // dimension — rejected. (0b001111 = 0b001100 ^ 0b000011.)
        assert!(packed.replaced(0, 0b001111).is_none());
        // The swap equals the from-scratch construction.
        let reference = subspace(6, &[0b000011, 0b110000, 0b000100]);
        assert_eq!(swapped.to_subspace(), reference);
    }

    #[test]
    fn vectors_enumerate_exactly_the_span() {
        let s = subspace(6, &[0b000111, 0b011100, 0b110000]);
        let packed = PackedBasis::from_subspace(&s);
        let got: HashSet<u64> = packed.vectors().collect();
        let expected: HashSet<u64> = s.vectors().map(|v| v.as_u64()).collect();
        assert_eq!(got, expected);
        assert_eq!(packed.vectors().len(), 1 << packed.dim());
    }

    #[test]
    fn coset_enumerates_offset_plus_span() {
        let s = subspace(6, &[0b000011, 0b001100]);
        let packed = PackedBasis::from_subspace(&s);
        let offset = 0b110000u64;
        let got: HashSet<u64> = packed.coset(offset).collect();
        let expected: HashSet<u64> = s.vectors().map(|v| v.as_u64() ^ offset).collect();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 1 << packed.dim());
        // The coset never touches the subspace itself (offset ∉ span).
        assert!(got.iter().all(|&v| !packed.contains(v)));
    }

    #[test]
    fn trivial_basis_behaviour() {
        let t = PackedBasis::trivial(8);
        assert_eq!(t.dim(), 0);
        assert!(t.contains(0));
        assert!(!t.contains(1));
        assert_eq!(t.vectors().collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.coset(42).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn full_width_64_round_trips() {
        let s = Subspace::full(64);
        let packed = PackedBasis::from_subspace(&s);
        assert_eq!(packed.dim(), 64);
        assert!(packed.contains(u64::MAX));
        assert_eq!(packed.to_subspace(), s);
    }

    #[test]
    fn standard_span_matches_subspace_standard_span() {
        let packed = PackedBasis::standard_span(10, [7usize, 2, 9, 2]);
        let reference = Subspace::standard_span(10, [7usize, 2, 9, 2]);
        assert_eq!(packed, PackedBasis::from_subspace(&reference));
        assert_eq!(packed.dim(), 3);
        assert!(packed.is_coordinate_subspace());
        assert_eq!(PackedBasis::standard_span(6, []).dim(), 0);
    }

    #[test]
    #[should_panic(expected = "outside GF(2)^4")]
    fn standard_span_rejects_out_of_width_bits() {
        let _ = PackedBasis::standard_span(4, [4usize]);
    }

    #[test]
    fn extended_matches_subspace_extended() {
        let s = subspace(6, &[0b000011, 0b001100]);
        let packed = PackedBasis::from_subspace(&s);
        for v in 0..(1u64 << 6) {
            let grown = packed.extended(v);
            assert_eq!(
                grown.to_subspace(),
                s.extended(BitVec::from_u64(v, 6)),
                "direction {v:06b}"
            );
            // Dependent directions leave the basis unchanged.
            assert_eq!(grown.dim() == packed.dim(), packed.contains(v));
        }
    }

    #[test]
    fn hyperplanes_match_subspace_hyperplanes_in_order() {
        let s = subspace(8, &[0b0000_0111, 0b0011_1000, 0b1100_0000, 0b1010_1010]);
        let packed = PackedBasis::from_subspace(&s);
        let reference = s.hyperplanes();
        let got: Vec<PackedBasis> = packed.hyperplanes().collect();
        assert_eq!(packed.hyperplanes().len(), reference.len());
        assert_eq!(got.len(), reference.len());
        for (i, (p, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(p, &PackedBasis::from_subspace(r), "hyperplane {i}");
            assert!(packed.contains_subspace(p));
            // Canonical with no re-elimination: round-tripping changes nothing.
            assert_eq!(p, &PackedBasis::from_subspace(&p.to_subspace()));
        }
        assert_eq!(PackedBasis::trivial(8).hyperplanes().count(), 0);
    }

    #[test]
    fn hyperplane_extended_by_an_outside_member_recovers_the_parent() {
        let s = subspace(6, &[0b000111, 0b011100, 0b110000]);
        let packed = PackedBasis::from_subspace(&s);
        for hyper in packed.hyperplanes() {
            let v = packed
                .vectors()
                .find(|&v| v != 0 && !hyper.contains(v))
                .expect("a hyperplane misses half the parent");
            assert_eq!(hyper.extended(v), packed);
        }
    }

    #[test]
    fn contains_subspace_orders_and_rejects_width_mismatch() {
        let small = PackedBasis::standard_span(6, [1usize, 2]);
        let big = PackedBasis::standard_span(6, [0usize, 1, 2, 3]);
        assert!(big.contains_subspace(&small));
        assert!(!small.contains_subspace(&big));
        assert!(small.contains_subspace(&small));
        assert!(small.contains_subspace(&PackedBasis::trivial(6)));
    }

    #[test]
    fn canonical_key_identifies_the_subspace() {
        let a = PackedBasis::from_subspace(&subspace(8, &[0b0011_0011, 0b0101_0101]));
        let b = PackedBasis::from_subspace(&subspace(8, &[0b0101_0101, 0b0110_0110]));
        assert_eq!(a, b);
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = PackedBasis::from_subspace(&subspace(8, &[0b0011_0011]));
        assert_ne!(a.canonical_key(), c.canonical_key());
        // The width participates, so equal rows in different ambient spaces
        // yield different keys.
        let narrow = PackedBasis::standard_span(6, [1usize]);
        let wide = PackedBasis::standard_span(8, [1usize]);
        assert_eq!(narrow.rows(), wide.rows());
        assert_ne!(narrow.canonical_key(), wide.canonical_key());
        assert_eq!(a.canonical_key().as_words()[0], 8);
    }

    #[test]
    fn key_hash_agrees_across_all_three_paths() {
        let bases = [
            PackedBasis::trivial(8),
            PackedBasis::standard_span(8, [1usize, 4]),
            PackedBasis::from_subspace(&subspace(8, &[0b0011_0011, 0b0101_0101])),
            PackedBasis::from_subspace(&Subspace::full(64)),
        ];
        let mut buf = [0u64; 65];
        for b in &bases {
            let owned = b.canonical_key();
            assert_eq!(b.key_hash(), owned.hash64());
            assert_eq!(b.key_hash(), hash_key_words(b.key_words(&mut buf)));
            assert_eq!(owned.hash64(), hash_key_words(owned.as_words()));
        }
        // Equal subspaces hash equal; the width participates.
        let a = PackedBasis::from_subspace(&subspace(8, &[0b0011_0011, 0b0101_0101]));
        let b = PackedBasis::from_subspace(&subspace(8, &[0b0101_0101, 0b0110_0110]));
        assert_eq!(a, b);
        assert_eq!(a.key_hash(), b.key_hash());
        assert_ne!(
            PackedBasis::standard_span(6, [1usize]).key_hash(),
            PackedBasis::standard_span(8, [1usize]).key_hash()
        );
    }

    #[test]
    fn key_hash_spreads_nearby_keys() {
        // Shard selection uses the low bits; single-unit subspaces of one
        // ambient width must not all collapse into a few shards.
        let mut low_bits: HashSet<u64> = HashSet::new();
        for bit in 0..16usize {
            low_bits.insert(PackedBasis::standard_span(16, [bit]).key_hash() % 16);
        }
        assert!(low_bits.len() >= 8, "low bits collapsed: {low_bits:?}");
    }

    #[test]
    fn ordering_is_total_and_consistent_with_equality() {
        let mut bases = [
            PackedBasis::standard_span(6, [5usize]),
            PackedBasis::standard_span(6, [0usize, 1]),
            PackedBasis::trivial(6),
            PackedBasis::standard_span(6, [5usize]),
        ];
        bases.sort();
        for w in bases.windows(2) {
            assert!(w[0] <= w[1]);
            assert_eq!(w[0] == w[1], w[0].cmp(&w[1]).is_eq());
        }
    }

    #[test]
    fn try_from_rows_roundtrips_canonical_rows_and_rejects_everything_else() {
        // Round trip: any basis's own rows reconstruct it exactly.
        for basis in [
            PackedBasis::trivial(9),
            PackedBasis::standard_span(9, [0usize, 3, 7]),
            {
                let mut b = PackedBasis::trivial(9);
                b.insert(0b1_0110_0001);
                b.insert(0b0_0101_0011);
                b.insert(0b0_0000_0111);
                b
            },
        ] {
            let rebuilt = PackedBasis::try_from_rows(basis.width(), basis.rows().to_vec())
                .expect("canonical rows");
            assert_eq!(rebuilt, basis);
        }
        // Width 64 is the edge the mask arithmetic must survive.
        let wide = PackedBasis::standard_span(64, [63usize, 0]);
        assert_eq!(
            PackedBasis::try_from_rows(64, wide.rows().to_vec()).unwrap(),
            wide
        );

        assert!(matches!(
            PackedBasis::try_from_rows(0, vec![]),
            Err(Gf2Error::UnsupportedWidth(0))
        ));
        assert!(matches!(
            PackedBasis::try_from_rows(65, vec![]),
            Err(Gf2Error::UnsupportedWidth(65))
        ));
        // Zero row, out-of-width bits, unsorted pivots, duplicate pivots,
        // and a dirty pivot column are each rejected.
        for rows in [
            vec![0u64],
            vec![0b1_0000_0000u64],
            vec![0b0001u64, 0b0110],
            vec![0b0110u64, 0b0101],
            vec![0b1100u64, 0b0110],
        ] {
            assert!(
                matches!(
                    PackedBasis::try_from_rows(8, rows.clone()),
                    Err(Gf2Error::Impossible(_))
                ),
                "rows {rows:?} should be rejected"
            );
        }
    }

    #[test]
    fn admits_permutation_based_matches_subspace_check() {
        for (gens, m) in [
            (vec![0b110000u64, 0b001100, 0b000011], 2usize),
            (vec![0b000001, 0b110000], 2),
            (vec![0b101010, 0b010101], 3),
            (vec![], 4),
        ] {
            let s = subspace(6, &gens);
            let packed = PackedBasis::from_subspace(&s);
            assert_eq!(
                packed.admits_permutation_based(m),
                s.admits_permutation_based_function(m),
                "gens {gens:?}, m {m}"
            );
        }
    }
}
