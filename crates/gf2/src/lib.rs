//! Linear algebra over GF(2), sized for cache-indexing problems.
//!
//! The XOR-indexing work of Vandierendonck et al. (DATE 2006) represents a
//! cache set-index function as an `n × m` binary matrix `H`: an `n`-bit block
//! address `a` (a row vector) is mapped to the `m`-bit set index `s = a · H`,
//! where addition is XOR and multiplication is logical AND.
//!
//! This crate provides the small, dense GF(2) toolkit that the rest of the
//! workspace builds on:
//!
//! * [`BitVec`] — a fixed-width (≤ 64 bit) vector over GF(2);
//! * [`BitMatrix`] — a dense matrix over GF(2) with rank, row reduction,
//!   inversion, matrix/vector products, and null-space extraction;
//! * [`Subspace`] — a linear subspace of GF(2)^n in canonical (reduced
//!   row-echelon) basis form, with membership tests, intersection, sum,
//!   orthogonal complements and vector enumeration;
//! * [`PackedBasis`] — the same canonical basis packed into bare `u64` words
//!   for hot-path evaluation: fast reduce/membership, incremental
//!   extend/replace of one generator, incremental hyperplane enumeration,
//!   Gray-code coset enumeration, and compact [`CanonicalKey`] map keys;
//! * [`SlicedBlock`] — up to 64 packed bases transposed into column-wise
//!   `u64` check planes, so one pass over a vector's set bits answers the
//!   membership test for every candidate in the block at once;
//! * [`SlicedCosetBlock`] — the same idea specialized to neighbourhood blocks
//!   `hyperplane ⊕ span(direction)` over one shared parent, where a single
//!   parent reduction plus a remainder lookup rejects all 64 lanes at once;
//!   paired with a [`CosetHistogram`] (entries pre-grouped by parent
//!   remainder, shared across the neighbourhood's blocks) each block visits
//!   only the entries its lanes can actually contain;
//! * [`count`] — Gaussian binomials and the matrix/subspace counting formulas
//!   quoted in Section 2 of the paper (Eq. 3);
//! * [`random`] — seeded random generation of vectors, full-rank matrices and
//!   subspaces, used by randomized searches and by the test-suite.
//!
//! # Example
//!
//! ```
//! use gf2::{BitMatrix, BitVec};
//!
//! // The conventional modulo-2^m index function selects the m low-order bits.
//! let h = BitMatrix::bit_selection(16, &[0, 1, 2, 3]);
//! let addr = BitVec::from_u64(0b1010_0110, 16);
//! assert_eq!(h.mul_vec(addr).as_u64(), 0b0110);
//!
//! // Two addresses conflict exactly when their XOR lies in the null space.
//! let ns = h.null_space();
//! let a = BitVec::from_u64(0x1234, 16);
//! let b = BitVec::from_u64(0x5634, 16);
//! assert_eq!(h.mul_vec(a) == h.mul_vec(b), ns.contains(a ^ b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod matrix;
mod packed;
mod sliced;
mod subspace;

pub mod count;
pub mod random;

pub use bitvec::{BitVec, SetBits};
pub use matrix::BitMatrix;
pub use packed::{hash_key_words, CanonicalKey, PackedBasis, PackedHyperplanes, PackedVectors};
pub use sliced::{CosetFrame, CosetHistogram, SlicedBlock, SlicedCosetBlock, SLICED_LANES};
pub use subspace::{Subspace, SubspaceVectors};

/// Errors reported by GF(2) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gf2Error {
    /// A width outside the supported `1..=64` range was requested.
    UnsupportedWidth(usize),
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension that was supplied.
        actual: usize,
    },
    /// A square matrix was singular where an invertible one was required.
    Singular,
    /// A requested object does not exist (e.g. a subspace of impossible dimension).
    Impossible(String),
}

impl std::fmt::Display for Gf2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gf2Error::UnsupportedWidth(w) => {
                write!(f, "unsupported bit width {w}, expected 1..=64")
            }
            Gf2Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Gf2Error::Singular => write!(f, "matrix is singular"),
            Gf2Error::Impossible(msg) => write!(f, "impossible request: {msg}"),
        }
    }
}

impl std::error::Error for Gf2Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Gf2Error>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            Gf2Error::UnsupportedWidth(65),
            Gf2Error::DimensionMismatch {
                expected: 4,
                actual: 5,
            },
            Gf2Error::Singular,
            Gf2Error::Impossible("n < m".to_string()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gf2Error>();
        assert_send_sync::<BitVec>();
        assert_send_sync::<BitMatrix>();
        assert_send_sync::<Subspace>();
    }
}
