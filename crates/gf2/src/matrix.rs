//! Dense matrices over GF(2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitVec, Gf2Error, Result, Subspace};

/// A dense matrix over GF(2) with at most 64 columns and 64 rows.
///
/// Following the convention of the paper, a hash function hashing `n` address
/// bits into `m` set-index bits is an `n × m` matrix `H`; row `r` describes to
/// which set-index bits address bit `a_r` contributes, and column `c` lists
/// the address bits feeding the XOR gate that produces set-index bit `c`.
/// The set index of a block address `a` (a row vector) is `a · H`
/// ([`BitMatrix::mul_vec`]).
///
/// # Example
///
/// ```
/// use gf2::{BitMatrix, BitVec};
///
/// let id = BitMatrix::identity(4);
/// let v = BitVec::from_u64(0b1010, 4);
/// assert_eq!(id.mul_vec(v), v);
/// assert_eq!(id.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitMatrix {
    /// `rows[r]` holds row `r` as a bitmask over the columns.
    rows: Vec<u64>,
    n_rows: usize,
    n_cols: usize,
}

impl BitMatrix {
    /// Maximum supported dimension (rows or columns).
    pub const MAX_DIM: usize = 64;

    fn check_dims(n_rows: usize, n_cols: usize) {
        assert!(
            (1..=Self::MAX_DIM).contains(&n_rows),
            "unsupported row count {n_rows}"
        );
        assert!(
            (1..=Self::MAX_DIM).contains(&n_cols),
            "unsupported column count {n_cols}"
        );
    }

    /// Creates the zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0 or larger than [`BitMatrix::MAX_DIM`].
    #[must_use]
    pub fn zero(n_rows: usize, n_cols: usize) -> Self {
        Self::check_dims(n_rows, n_cols);
        BitMatrix {
            rows: vec![0; n_rows],
            n_rows,
            n_cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than [`BitMatrix::MAX_DIM`].
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.rows[i] = 1 << i;
        }
        m
    }

    /// Builds a matrix from its rows. All rows must share the same width,
    /// which becomes the column count.
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] when rows have differing widths
    /// and [`Gf2Error::UnsupportedWidth`] when `rows` is empty.
    pub fn from_rows(rows: &[BitVec]) -> Result<Self> {
        let first = rows.first().ok_or(Gf2Error::UnsupportedWidth(0))?;
        let n_cols = first.width();
        for r in rows {
            if r.width() != n_cols {
                return Err(Gf2Error::DimensionMismatch {
                    expected: n_cols,
                    actual: r.width(),
                });
            }
        }
        Self::check_dims(rows.len(), n_cols);
        Ok(BitMatrix {
            rows: rows.iter().map(|r| r.as_u64()).collect(),
            n_rows: rows.len(),
            n_cols,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is unsupported.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(n_rows: usize, n_cols: usize, mut f: F) -> Self {
        let mut m = Self::zero(n_rows, n_cols);
        for r in 0..n_rows {
            for c in 0..n_cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Builds the `n × m` bit-selecting matrix whose column `c` selects
    /// address bit `selected[c]`.
    ///
    /// The conventional modulo-`2^m` index function is
    /// `bit_selection(n, &[0, 1, ..., m-1])` (see [`BitMatrix::modulo_index`]).
    ///
    /// # Panics
    ///
    /// Panics if any selected bit is `>= n`, if `selected` is empty, or if a
    /// dimension is unsupported.
    #[must_use]
    pub fn bit_selection(n: usize, selected: &[usize]) -> Self {
        assert!(!selected.is_empty(), "at least one bit must be selected");
        let mut m = Self::zero(n, selected.len());
        for (c, &r) in selected.iter().enumerate() {
            assert!(r < n, "selected bit {r} out of range for {n} address bits");
            m.set(r, c, true);
        }
        m
    }

    /// Builds the conventional modulo-`2^m` index matrix selecting the `m`
    /// low-order bits of an `n`-bit address.
    ///
    /// # Panics
    ///
    /// Panics if `m > n` or a dimension is unsupported.
    #[must_use]
    pub fn modulo_index(n: usize, m: usize) -> Self {
        assert!(m <= n, "cannot select {m} bits from {n}");
        let selected: Vec<usize> = (0..m).collect();
        Self::bit_selection(n, &selected)
    }

    /// Number of rows (hashed address bits for a hash-function matrix).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (set-index bits for a hash-function matrix).
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Returns entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.n_rows && c < self.n_cols, "index out of range");
        (self.rows[r] >> c) & 1 == 1
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.n_rows && c < self.n_cols, "index out of range");
        if value {
            self.rows[r] |= 1 << c;
        } else {
            self.rows[r] &= !(1 << c);
        }
    }

    /// Returns row `r` as a [`BitVec`] of width [`BitMatrix::n_cols`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> BitVec {
        assert!(r < self.n_rows, "row {r} out of range");
        BitVec::from_u64(self.rows[r], self.n_cols)
    }

    /// Overwrites row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the width differs from the column count.
    pub fn set_row(&mut self, r: usize, row: BitVec) {
        assert!(r < self.n_rows, "row {r} out of range");
        assert_eq!(row.width(), self.n_cols, "row width mismatch");
        self.rows[r] = row.as_u64();
    }

    /// Returns column `c` as a [`BitVec`] of width [`BitMatrix::n_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn column(&self, c: usize) -> BitVec {
        assert!(c < self.n_cols, "column {c} out of range");
        let mut v = BitVec::zero(self.n_rows);
        for r in 0..self.n_rows {
            if self.get(r, c) {
                v.set(r, true);
            }
        }
        v
    }

    /// Iterates over the rows as [`BitVec`]s.
    pub fn iter_rows(&self) -> impl Iterator<Item = BitVec> + '_ {
        (0..self.n_rows).map(move |r| self.row(r))
    }

    /// Number of ones in column `c`: the fan-in of the XOR gate producing
    /// set-index bit `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn column_weight(&self, c: usize) -> usize {
        self.column(c).weight()
    }

    /// Largest column weight, i.e. the widest XOR gate required to implement
    /// this matrix as an index function.
    #[must_use]
    pub fn max_column_weight(&self) -> usize {
        (0..self.n_cols)
            .map(|c| self.column_weight(c))
            .max()
            .unwrap_or(0)
    }

    /// Total number of ones in the matrix (total XOR-gate inputs).
    #[must_use]
    pub fn total_weight(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// `true` when the matrix is all zeroes.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// `true` when the matrix is square and equal to the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.n_rows == self.n_cols && (0..self.n_rows).all(|r| self.rows[r] == 1 << r)
    }

    /// Row-vector × matrix product `a · H` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `a.width() != self.n_rows()`.
    #[must_use]
    pub fn mul_vec(&self, a: BitVec) -> BitVec {
        assert_eq!(
            a.width(),
            self.n_rows,
            "vector width must equal the matrix row count"
        );
        let mut acc = 0u64;
        let mut bits = a.as_u64();
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            acc ^= self.rows[r];
            bits &= bits - 1;
        }
        BitVec::from_u64(acc, self.n_cols)
    }

    /// Matrix product `self · rhs` over GF(2).
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] when `self.n_cols() != rhs.n_rows()`.
    pub fn mul(&self, rhs: &BitMatrix) -> Result<BitMatrix> {
        if self.n_cols != rhs.n_rows {
            return Err(Gf2Error::DimensionMismatch {
                expected: self.n_cols,
                actual: rhs.n_rows,
            });
        }
        let mut out = BitMatrix::zero(self.n_rows, rhs.n_cols);
        for r in 0..self.n_rows {
            out.rows[r] = rhs.mul_vec(self.row(r)).as_u64();
        }
        Ok(out)
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zero(self.n_cols, self.n_rows);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                if self.get(r, c) {
                    t.set(c, r, true);
                }
            }
        }
        t
    }

    /// Reduced row-echelon form together with the pivot column of each
    /// non-zero row (in order).
    #[must_use]
    pub fn rref(&self) -> (BitMatrix, Vec<usize>) {
        let mut rows = self.rows.clone();
        let mut pivots = Vec::new();
        let mut row = 0usize;
        for col in (0..self.n_cols).rev() {
            // Pivot on the most significant columns first so that the
            // canonical basis vectors come out ordered by leading bit.
            if row >= rows.len() {
                break;
            }
            let mask = 1u64 << col;
            if let Some(p) = (row..rows.len()).find(|&r| rows[r] & mask != 0) {
                rows.swap(row, p);
                let pivot_row = rows[row];
                for (r, other) in rows.iter_mut().enumerate() {
                    if r != row && *other & mask != 0 {
                        *other ^= pivot_row;
                    }
                }
                pivots.push(col);
                row += 1;
            }
        }
        // Move zero rows to the bottom (they already are, by construction).
        let m = BitMatrix {
            rows,
            n_rows: self.n_rows,
            n_cols: self.n_cols,
        };
        (m, pivots)
    }

    /// Rank of the matrix over GF(2).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// `true` when the matrix has full column rank, i.e. it maps `n`-bit
    /// addresses *onto* all `2^m` set indices. Hash-function matrices must
    /// have this property to use the whole cache.
    #[must_use]
    pub fn has_full_column_rank(&self) -> bool {
        self.rank() == self.n_cols
    }

    /// Inverse of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::DimensionMismatch`] for non-square matrices and
    /// [`Gf2Error::Singular`] when no inverse exists.
    pub fn inverse(&self) -> Result<BitMatrix> {
        if self.n_rows != self.n_cols {
            return Err(Gf2Error::DimensionMismatch {
                expected: self.n_rows,
                actual: self.n_cols,
            });
        }
        let n = self.n_rows;
        // Gauss-Jordan on [self | I].
        let mut left = self.rows.clone();
        let mut right: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
        // A square matrix is invertible iff every column yields a pivot, so
        // the pivot row always equals the current column.
        for col in 0..n {
            let mask = 1u64 << col;
            let Some(p) = (col..n).find(|&r| left[r] & mask != 0) else {
                return Err(Gf2Error::Singular);
            };
            left.swap(col, p);
            right.swap(col, p);
            let (lp, rp) = (left[col], right[col]);
            for r in 0..n {
                if r != col && left[r] & mask != 0 {
                    left[r] ^= lp;
                    right[r] ^= rp;
                }
            }
        }
        Ok(BitMatrix {
            rows: right,
            n_rows: n,
            n_cols: n,
        })
    }

    /// Right kernel: the subspace of vectors `v` (width = `n_cols`) with
    /// `row_r · v = 0` for every row.
    #[must_use]
    pub fn kernel(&self) -> Subspace {
        let (rref, pivots) = self.rref();
        let pivot_set: u64 = pivots.iter().fold(0, |acc, &c| acc | (1 << c));
        let mut basis = Vec::new();
        for free_col in 0..self.n_cols {
            if pivot_set & (1 << free_col) != 0 {
                continue;
            }
            // Basis vector: 1 in the free column, and for every pivot row whose
            // row contains the free column, a 1 in that row's pivot column.
            let mut v = BitVec::zero(self.n_cols);
            v.set(free_col, true);
            for (row_idx, &pivot_col) in pivots.iter().enumerate() {
                if (rref.rows[row_idx] >> free_col) & 1 == 1 {
                    v.set(pivot_col, true);
                }
            }
            basis.push(v);
        }
        Subspace::from_generators(self.n_cols, &basis)
    }

    /// Left null space: the subspace of row vectors `x` (width = `n_rows`)
    /// with `x · H = 0`. Two block addresses `x` and `y` map to the same set
    /// exactly when `x ⊕ y` lies in this space (paper Eq. 2).
    #[must_use]
    pub fn null_space(&self) -> Subspace {
        self.transpose().kernel()
    }

    /// Constructs an `n × m` full-column-rank matrix whose left null space is
    /// exactly `null_space`, where `m = n - null_space.dim()`.
    ///
    /// The columns are a canonical basis of the orthogonal complement of the
    /// null space, so any two calls with equal subspaces return equal matrices.
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::Impossible`] if the null space has dimension `n`
    /// (no index bits would remain).
    pub fn with_null_space(null_space: &Subspace) -> Result<BitMatrix> {
        let n = null_space.ambient_width();
        let m = n - null_space.dim();
        if m == 0 {
            return Err(Gf2Error::Impossible(
                "null space covers the whole space; no set-index bits remain".to_string(),
            ));
        }
        let complement = null_space.orthogonal_complement();
        debug_assert_eq!(complement.dim(), m);
        let mut h = BitMatrix::zero(n, m);
        for (c, basis_vec) in complement.basis().iter().enumerate() {
            for r in basis_vec.set_bits() {
                h.set(r, c, true);
            }
        }
        debug_assert!(h.has_full_column_rank());
        Ok(h)
    }

    /// Constructs the *permutation-based* matrix with the given left null
    /// space: the unique matrix with that null space whose `m` low-order rows
    /// form the identity (paper Section 4).
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::Impossible`] when the null space intersects
    /// `span(e_0, …, e_{m-1})` non-trivially (Eq. 5 violated), in which case no
    /// permutation-based representative exists.
    pub fn permutation_based_with_null_space(null_space: &Subspace) -> Result<BitMatrix> {
        let n = null_space.ambient_width();
        let m = n - null_space.dim();
        let h = Self::with_null_space(null_space)?;
        // The m low-order rows form an m×m submatrix; Eq. 5 holds exactly when
        // it is invertible. Multiplying on the right by its inverse keeps the
        // null space and turns the low rows into the identity.
        let mut low = BitMatrix::zero(m, m);
        for r in 0..m {
            low.set_row(r, h.row(r));
        }
        let low_inv = low.inverse().map_err(|_| {
            Gf2Error::Impossible(
                "null space intersects span(e_0..e_{m-1}); no permutation-based form".to_string(),
            )
        })?;
        let p = h.mul(&low_inv)?;
        debug_assert!(p.null_space() == *null_space);
        for r in 0..m {
            debug_assert_eq!(p.row(r), BitVec::unit(r, m));
        }
        let _ = n;
        Ok(p)
    }

    /// `true` when the `m` low-order rows form the identity, i.e. the matrix
    /// is in permutation-based form (paper Section 4).
    #[must_use]
    pub fn is_permutation_based(&self) -> bool {
        if self.n_rows < self.n_cols {
            return false;
        }
        (0..self.n_cols).all(|r| self.rows[r] == 1 << r)
    }
}

impl fmt::Display for BitMatrix {
    /// Renders the matrix with one row per line, column 0 rightmost.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.n_rows {
            for c in (0..self.n_cols).rev() {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            if r + 1 != self.n_rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = BitMatrix::identity(8);
        assert!(id.is_identity());
        assert!(!id.is_zero());
        assert_eq!(id.rank(), 8);
        assert!(id.has_full_column_rank());
        let v = BitVec::from_u64(0xA5, 8);
        assert_eq!(id.mul_vec(v), v);
        assert_eq!(id.inverse().unwrap(), id);
        assert_eq!(id.transpose(), id);
    }

    #[test]
    fn bit_selection_selects_bits() {
        let h = BitMatrix::bit_selection(8, &[1, 3, 5]);
        let v = BitVec::from_u64(0b0010_1010, 8);
        assert_eq!(h.mul_vec(v).as_u64(), 0b111);
        let w = BitVec::from_u64(0b0001_0101, 8);
        assert_eq!(h.mul_vec(w).as_u64(), 0b000);
        assert_eq!(h.max_column_weight(), 1);
    }

    #[test]
    fn modulo_index_is_low_bits() {
        let h = BitMatrix::modulo_index(16, 4);
        let v = BitVec::from_u64(0xABCD, 16);
        assert_eq!(h.mul_vec(v).as_u64(), 0xD);
        assert!(h.is_permutation_based());
    }

    #[test]
    fn mul_vec_matches_manual_xor() {
        // H computes s0 = a0^a2, s1 = a1^a3.
        let mut h = BitMatrix::zero(4, 2);
        h.set(0, 0, true);
        h.set(2, 0, true);
        h.set(1, 1, true);
        h.set(3, 1, true);
        for a in 0..16u64 {
            let v = BitVec::from_u64(a, 4);
            let s = h.mul_vec(v);
            let expect = ((a & 1) ^ ((a >> 2) & 1)) | ((((a >> 1) & 1) ^ ((a >> 3) & 1)) << 1);
            assert_eq!(s.as_u64(), expect, "address {a:04b}");
        }
        assert_eq!(h.total_weight(), 4);
        assert_eq!(h.column_weight(0), 2);
    }

    #[test]
    fn matrix_multiplication_associates_with_vector_product() {
        let a = BitMatrix::from_fn(4, 4, |r, c| (r * 3 + c) % 2 == 0);
        let b = BitMatrix::from_fn(4, 3, |r, c| (r + 2 * c) % 3 == 0);
        let ab = a.mul(&b).unwrap();
        for bits in 0..16u64 {
            let v = BitVec::from_u64(bits, 4);
            assert_eq!(ab.mul_vec(v), b.mul_vec(a.mul_vec(v)));
        }
    }

    #[test]
    fn mul_dimension_mismatch_errors() {
        let a = BitMatrix::identity(3);
        let b = BitMatrix::identity(4);
        assert!(matches!(
            a.mul(&b),
            Err(Gf2Error::DimensionMismatch {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = BitMatrix::from_fn(5, 3, |r, c| (r ^ c) % 2 == 1);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().n_rows(), 3);
        assert_eq!(a.transpose().n_cols(), 5);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let rows = [
            BitVec::from_u64(0b1010, 4),
            BitVec::from_u64(0b0101, 4),
            BitVec::from_u64(0b1111, 4), // sum of the first two
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.rank(), 2);
        assert!(!m.has_full_column_rank());
    }

    #[test]
    fn from_rows_rejects_mixed_widths() {
        let rows = [BitVec::zero(4), BitVec::zero(5)];
        assert!(matches!(
            BitMatrix::from_rows(&rows),
            Err(Gf2Error::DimensionMismatch {
                expected: 4,
                actual: 5
            })
        ));
        assert!(matches!(
            BitMatrix::from_rows(&[]),
            Err(Gf2Error::UnsupportedWidth(0))
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        // An invertible 4x4 matrix.
        let rows = [
            BitVec::from_u64(0b0011, 4),
            BitVec::from_u64(0b0110, 4),
            BitVec::from_u64(0b1100, 4),
            BitVec::from_u64(0b1001, 4),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        // This particular matrix has rank 3, so it must be reported singular.
        assert_eq!(m.rank(), 3);
        assert_eq!(m.inverse().unwrap_err(), Gf2Error::Singular);

        let rows = [
            BitVec::from_u64(0b0011, 4),
            BitVec::from_u64(0b0110, 4),
            BitVec::from_u64(0b1100, 4),
            BitVec::from_u64(0b1000, 4),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        let inv = m.inverse().unwrap();
        assert!(m.mul(&inv).unwrap().is_identity());
        assert!(inv.mul(&m).unwrap().is_identity());
    }

    #[test]
    fn inverse_of_non_square_is_error() {
        let m = BitMatrix::zero(3, 4);
        assert!(matches!(
            m.inverse(),
            Err(Gf2Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn kernel_contains_exactly_the_annihilated_vectors() {
        // Matrix with a 1-dimensional kernel.
        let rows = [
            BitVec::from_u64(0b0111, 4),
            BitVec::from_u64(0b1010, 4),
            BitVec::from_u64(0b0001, 4),
        ];
        let m = BitMatrix::from_rows(&rows).unwrap();
        let k = m.kernel();
        assert_eq!(k.dim(), 4 - m.rank());
        for bits in 0..16u64 {
            let v = BitVec::from_u64(bits, 4);
            let annihilated = (0..3).all(|r| !m.row(r).dot(v));
            assert_eq!(k.contains(v), annihilated, "vector {bits:04b}");
        }
    }

    #[test]
    fn null_space_characterizes_conflicts() {
        let h = BitMatrix::modulo_index(8, 3);
        let ns = h.null_space();
        assert_eq!(ns.dim(), 5);
        for x in 0..256u64 {
            for y in (x + 1)..256 {
                let vx = BitVec::from_u64(x, 8);
                let vy = BitVec::from_u64(y, 8);
                let same_set = h.mul_vec(vx) == h.mul_vec(vy);
                assert_eq!(same_set, ns.contains(vx ^ vy));
            }
        }
    }

    #[test]
    fn with_null_space_roundtrip() {
        let h = BitMatrix::from_fn(8, 3, |r, c| (r + c) % 3 == 0 || r == c);
        assert!(h.has_full_column_rank());
        let ns = h.null_space();
        let h2 = BitMatrix::with_null_space(&ns).unwrap();
        assert_eq!(h2.n_rows(), 8);
        assert_eq!(h2.n_cols(), 3);
        assert_eq!(h2.null_space(), ns);
    }

    #[test]
    fn with_null_space_rejects_full_space() {
        let full = BitMatrix::zero(4, 4).kernel();
        assert_eq!(full.dim(), 4);
        assert!(matches!(
            BitMatrix::with_null_space(&full),
            Err(Gf2Error::Impossible(_))
        ));
    }

    #[test]
    fn permutation_based_form_has_identity_low_rows() {
        // The modulo index is permutation-based; a rotated bit-selection is not.
        let h = BitMatrix::modulo_index(16, 4);
        let p = BitMatrix::permutation_based_with_null_space(&h.null_space()).unwrap();
        assert!(p.is_permutation_based());
        assert_eq!(p.null_space(), h.null_space());

        // Null space of the function selecting bits 4..8 contains e0..e3, so a
        // permutation-based representative cannot exist.
        let h = BitMatrix::bit_selection(16, &[4, 5, 6, 7]);
        assert!(matches!(
            BitMatrix::permutation_based_with_null_space(&h.null_space()),
            Err(Gf2Error::Impossible(_))
        ));
    }

    #[test]
    fn permutation_based_xor_function_roundtrip() {
        // A genuine XOR function in permutation-based form: s_c = a_c ^ a_{c+4}.
        let h = BitMatrix::from_fn(8, 4, |r, c| r == c || r == c + 4);
        assert!(h.is_permutation_based());
        let p = BitMatrix::permutation_based_with_null_space(&h.null_space()).unwrap();
        // The permutation-based representative of a null space is unique, so we
        // must get the very same matrix back.
        assert_eq!(p, h);
    }

    #[test]
    fn display_renders_rows() {
        let m = BitMatrix::identity(2);
        assert_eq!(m.to_string(), "01\n10");
    }

    #[test]
    fn rref_pivots_are_decreasing_columns() {
        let m = BitMatrix::from_fn(6, 6, |r, c| (r * 5 + c * 3) % 7 < 3);
        let (rref, pivots) = m.rref();
        assert_eq!(pivots.len(), m.rank());
        for w in pivots.windows(2) {
            assert!(w[0] > w[1], "pivot columns must strictly decrease");
        }
        // Every pivot column has exactly one 1 in the reduced form.
        for (row_idx, &col) in pivots.iter().enumerate() {
            let ones = (0..6).filter(|&r| rref.get(r, col)).count();
            assert_eq!(ones, 1);
            assert!(rref.get(row_idx, col));
        }
    }
}
