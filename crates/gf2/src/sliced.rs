//! Bit-sliced membership tests for blocks of up to 64 candidate subspaces.
//!
//! The Eq. 4 histogram scan asks one question per `(candidate, vector)` pair:
//! does the conflict vector `v` lie in the candidate's null space? A
//! [`PackedBasis`] answers it for one candidate at a time by reducing `v`
//! against its rows. A [`SlicedBlock`] transposes that computation: it lays
//! the membership checks of up to [`SLICED_LANES`] candidates out
//! *column-wise*, one candidate per bit position ("lane") of a `u64` word, so
//! a single pass over `v`'s set bits advances every candidate in the block at
//! once.
//!
//! The transposition rests on the remainder map being *linear* in `v` for a
//! basis in reduced row-echelon form: each pivot column is zero in every
//! other row, so reducing `v` XORs in exactly the rows whose pivot bit is set
//! in `v`, independent of order. Writing `row(b)` for the row with pivot `b`,
//!
//! ```text
//! remainder(v) = Σ_b v_b · col(b),   col(b) = e_b ⊕ row(b)   (b a pivot)
//!                                    col(b) = e_b             (otherwise)
//! ```
//!
//! and `v` is a member exactly when the remainder is zero. Remainder bits at
//! pivot positions are identically zero (each `col(b)` is supported on
//! non-pivot coordinates only), so the block stores just the `width − dim`
//! non-pivot *check* coordinates per candidate: `checks` bit-planes, each a
//! `u64` whose bit `j` belongs to lane `j`. Testing `v` then costs
//! `popcount(v) × checks` word XORs for the whole block — under one word
//! operation per candidate for typical conflict vectors, against the
//! `dim`-row reduction [`PackedBasis::contains`] pays per candidate.

use crate::PackedBasis;

/// Maximum number of candidates ("lanes") a [`SlicedBlock`] holds: one per
/// bit of the `u64` membership mask.
pub const SLICED_LANES: usize = 64;

/// A transposed block of up to [`SLICED_LANES`] candidate subspaces of one
/// ambient width, answering membership for all of them in one word-parallel
/// pass.
///
/// # Example
///
/// ```
/// use gf2::{PackedBasis, SlicedBlock};
///
/// let a = PackedBasis::standard_span(8, [0usize, 1]);
/// let b = PackedBasis::standard_span(8, [1usize, 2]);
/// let block = SlicedBlock::from_bases([&a, &b]);
///
/// // Bit j of the mask is lane j's membership verdict.
/// assert_eq!(block.member_mask(0b0000_0011), 0b01); // in a, not in b
/// assert_eq!(block.member_mask(0b0000_0110), 0b10); // in b, not in a
/// assert_eq!(block.member_mask(0b0000_0010), 0b11); // in both
/// assert_eq!(block.member_mask(0b1000_0000), 0b00); // in neither
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedBlock {
    width: usize,
    lanes: usize,
    /// Check bit-planes per input bit: the largest `width − dim` over the
    /// lanes. Lanes of higher dimension simply leave their surplus planes
    /// zero (no constraint).
    checks: usize,
    /// `columns[b * checks + r]`: bit `j` is lane `j`'s coefficient of input
    /// bit `b` on check row `r`.
    columns: Vec<u64>,
    /// Low `lanes` bits set.
    lane_mask: u64,
    /// Low `width` bits set: vectors outside the ambient space are members of
    /// no lane.
    low_mask: u64,
}

impl SlicedBlock {
    /// Builds a block from 1..=[`SLICED_LANES`] candidate bases of equal
    /// ambient width. Dimensions may differ across lanes.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no basis, more than [`SLICED_LANES`], or
    /// bases of differing ambient widths.
    #[must_use]
    pub fn from_bases<'a>(bases: impl IntoIterator<Item = &'a PackedBasis>) -> Self {
        let bases: Vec<&PackedBasis> = bases.into_iter().collect();
        assert!(!bases.is_empty(), "a sliced block needs at least one lane");
        assert!(
            bases.len() <= SLICED_LANES,
            "a sliced block holds at most {SLICED_LANES} lanes, got {}",
            bases.len()
        );
        let width = bases[0].width();
        let lanes = bases.len();
        let checks = bases
            .iter()
            .map(|b| {
                assert_eq!(b.width(), width, "sliced lanes must share one width");
                width - b.dim()
            })
            .max()
            .unwrap_or(0);
        let mut columns = vec![0u64; width * checks];
        for (j, basis) in bases.iter().enumerate() {
            let lane_bit = 1u64 << j;
            // Index the RREF rows by their pivot coordinate.
            let mut pivot_row = [0u64; 64];
            let mut pivots = 0u64;
            for &row in basis.rows() {
                let p = 63 - row.leading_zeros() as usize;
                pivots |= 1 << p;
                pivot_row[p] = row;
            }
            // Check rows are this lane's non-pivot coordinates, ascending.
            let mut check_of = [usize::MAX; 64];
            let mut next = 0usize;
            for (c, slot) in check_of.iter_mut().enumerate().take(width) {
                if pivots & (1u64 << c) == 0 {
                    *slot = next;
                    next += 1;
                }
            }
            for b in 0..width {
                // col(b) = e_b ⊕ row(b) for pivots, e_b otherwise; supported
                // on non-pivot coordinates only (RREF zeroes pivot columns in
                // every other row).
                let mut col = if pivots & (1u64 << b) != 0 {
                    pivot_row[b] ^ (1u64 << b)
                } else {
                    1u64 << b
                };
                while col != 0 {
                    let c = col.trailing_zeros() as usize;
                    col &= col - 1;
                    columns[b * checks + check_of[c]] |= lane_bit;
                }
            }
        }
        SlicedBlock {
            width,
            lanes,
            checks,
            columns,
            lane_mask: mask_low(lanes),
            low_mask: mask_low(width),
        }
    }

    /// Builds the block for the neighbours `hyperplane ⊕ span(direction_j)` —
    /// the hyperplane/direction decomposition a search neighbourhood arrives
    /// in, without the caller materializing each extended basis.
    ///
    /// # Panics
    ///
    /// Panics if `directions` is empty, longer than [`SLICED_LANES`], or
    /// contains a vector already inside the hyperplane (the neighbour would
    /// not be an extension).
    #[must_use]
    pub fn from_extensions(hyperplane: &PackedBasis, directions: &[u64]) -> Self {
        let extended: Vec<PackedBasis> = directions
            .iter()
            .map(|&d| {
                assert!(
                    !hyperplane.contains(d),
                    "direction {d:#x} lies inside the hyperplane"
                );
                hyperplane.extended(d)
            })
            .collect();
        Self::from_bases(&extended)
    }

    /// Ambient width shared by every lane.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of candidate lanes in the block.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Check bit-planes per input bit (the widest `width − dim` over lanes).
    #[must_use]
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Mask with one bit set per occupied lane.
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// The word-parallel membership test: bit `j` of the result is set exactly
    /// when `v` lies in lane `j`'s subspace, i.e. when
    /// [`PackedBasis::contains`] would return `true` for that lane.
    #[must_use]
    pub fn member_mask(&self, v: u64) -> u64 {
        let mut scratch = [0u64; SLICED_LANES];
        self.member_mask_scratch(v, &mut scratch)
    }

    /// Sums entry weights into every lane at once: lane `j` of the result is
    /// `Σ w` over the entries `(v, w)` with `v` in lane `j`'s subspace —
    /// Eq. 4 for the whole block in one sweep.
    #[must_use]
    pub fn sum_weights(&self, entries: impl IntoIterator<Item = (u64, u64)>) -> Vec<u64> {
        let mut scratch = [0u64; SLICED_LANES];
        let mut sums = vec![0u64; self.lanes];
        for (v, w) in entries {
            let mut mask = self.member_mask_scratch(v, &mut scratch);
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                sums[lane] += w;
            }
        }
        sums
    }

    /// [`SlicedBlock::sum_weights`] with an incumbent bound: a lane whose
    /// running sum reaches `bound` is *saturated* — it stops accumulating, and
    /// once every lane is saturated the sweep abandons the remaining entries.
    ///
    /// Returns `(sums, saturated)` where bit `j` of `saturated` marks lane
    /// `j` as saturated. An unsaturated lane's sum is its exact Eq. 4 cost
    /// (running sums are monotone, so a lane with true cost `< bound` never
    /// saturates); a saturated lane's true cost is `≥ bound`.
    #[must_use]
    pub fn sum_weights_bounded(
        &self,
        entries: impl IntoIterator<Item = (u64, u64)>,
        bound: u64,
    ) -> (Vec<u64>, u64) {
        let mut scratch = [0u64; SLICED_LANES];
        let mut sums = vec![0u64; self.lanes];
        let mut saturated = if bound == 0 { self.lane_mask } else { 0 };
        if saturated != self.lane_mask {
            for (v, w) in entries {
                let mut mask = self.member_mask_scratch(v, &mut scratch) & !saturated;
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    sums[lane] += w;
                    if sums[lane] >= bound {
                        saturated |= 1u64 << lane;
                    }
                }
                if saturated == self.lane_mask {
                    break;
                }
            }
        }
        (sums, saturated)
    }

    /// [`SlicedBlock::member_mask`] with a caller-owned scratch buffer, for
    /// hot loops testing many vectors against one block: only the block's
    /// `checks` planes of the scratch are touched per call, instead of
    /// zero-initializing a fresh 64-word array each time.
    #[must_use]
    pub fn member_mask_scratch(&self, v: u64, scratch: &mut [u64; SLICED_LANES]) -> u64 {
        if v & !self.low_mask != 0 {
            return 0;
        }
        if self.checks == 0 {
            // Every lane is the full space.
            return self.lane_mask;
        }
        let planes = &mut scratch[..self.checks];
        planes.fill(0);
        let mut rest = v;
        while rest != 0 {
            let b = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let col = &self.columns[b * self.checks..(b + 1) * self.checks];
            for (plane, &word) in planes.iter_mut().zip(col) {
                *plane ^= word;
            }
        }
        let mut nonzero = 0u64;
        for &plane in planes.iter() {
            nonzero |= plane;
        }
        !nonzero & self.lane_mask
    }
}

/// A transposed block of up to [`SLICED_LANES`] *neighbour* candidates
/// `M_j ⊕ span(w_j)`, where every retained hyperplane `M_j` is a hyperplane
/// of one shared parent subspace `P` — the shape a search neighbourhood
/// arrives in.
///
/// A generic [`SlicedBlock`] must carry `width − dim` check planes per lane.
/// The shared parent collapses almost all of that work: membership in
/// `C_j = M_j ∪ (M_j ⊕ w_j)` factors through `P`. Writing `r = reduce_P(v)`
/// and `c(v)` for `v`'s coordinate vector over `P`'s RREF rows (both linear
/// in `v`, and `c` is a plain gather of `v`'s pivot bits),
///
/// ```text
/// v ∈ M_j       ⟺  r = 0    and  α_j · c(v) = 0
/// v ∈ M_j ⊕ w_j ⟺  r = ρ_j  and  α_j · c(v) = α_j · c(w_j)
/// ```
///
/// where `α_j` is the linear functional on `P` whose kernel is `M_j` and
/// `ρ_j = reduce_P(w_j)`. So one `dim(P)`-row reduction plus a lookup of `r`
/// among the (at most [`SLICED_LANES`]) direction remainders answers the
/// whole block; only when `r` hits `0` or some `ρ_j` does a single
/// word-parallel parity pass over `α` run. Histogram vectors far from the
/// parent — the vast majority — reject for all 64 lanes in a handful of word
/// operations.
///
/// # Example
///
/// ```
/// use gf2::{PackedBasis, SlicedCosetBlock};
///
/// let parent = PackedBasis::standard_span(8, [0usize, 1]);
/// let hyperplane = PackedBasis::standard_span(8, [0usize]);
/// let block = SlicedCosetBlock::new(&parent, &[(&hyperplane, 1 << 4), (&hyperplane, 1 << 5)]);
///
/// // Lane j's candidate is span{e_0} ⊕ span{direction_j}.
/// assert_eq!(block.member_mask(0b0001_0001), 0b01);
/// assert_eq!(block.member_mask(0b0010_0000), 0b10);
/// assert_eq!(block.member_mask(0b0000_0001), 0b11); // in the shared hyperplane
/// assert_eq!(block.member_mask(0b0000_0010), 0b00); // in the parent, in no candidate
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedCosetBlock {
    width: usize,
    lanes: usize,
    /// Parent RREF rows paired with their pivot positions.
    rows: Vec<(u64, u32)>,
    /// `alpha[k]`: bit `j` is the coefficient of lane `j`'s hyperplane
    /// functional on parent coordinate `k`.
    alpha: Vec<u64>,
    /// Bit `j` is `α_j · c(w_j)`, the parity the coset branch compares
    /// against.
    direction_parity: u64,
    /// Distinct direction remainders `ρ = reduce_P(w)` with the mask of lanes
    /// whose direction reduces to each, sorted by remainder for binary search.
    cosets: Vec<(u64, u64)>,
    /// Low `lanes` bits set.
    lane_mask: u64,
    /// Low `width` bits set.
    low_mask: u64,
}

impl SlicedCosetBlock {
    /// Builds a block from 1..=[`SLICED_LANES`] `(hyperplane, direction)`
    /// lanes sharing one `parent`: lane `j`'s candidate is
    /// `hyperplane_j ⊕ span(direction_j)`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or longer than [`SLICED_LANES`]; if the
    /// parent has dimension 0; if a hyperplane is not in fact a hyperplane of
    /// the parent (wrong width or dimension, or not contained in it); or if a
    /// direction lies inside its hyperplane (the candidate would not be an
    /// extension).
    #[must_use]
    pub fn new(parent: &PackedBasis, lanes: &[(&PackedBasis, u64)]) -> Self {
        // The standalone constructor treats each lane's hyperplane as its
        // own: a one-lane-per-hyperplane frame. Callers pricing a whole
        // neighbourhood (many lanes per distinct hyperplane) should build one
        // [`CosetFrame`] and stamp blocks from it instead.
        let frame = CosetFrame::new(parent, lanes.iter().map(|&(hyperplane, _)| hyperplane));
        let indexed: Vec<(usize, u64)> = lanes
            .iter()
            .enumerate()
            .map(|(j, &(_, direction))| (j, direction))
            .collect();
        frame.block(&indexed)
    }

    /// Ambient width shared by every lane.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of candidate lanes in the block.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with one bit set per occupied lane.
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// The word-parallel membership test: bit `j` of the result is set exactly
    /// when `v` lies in lane `j`'s candidate `hyperplane_j ⊕ span(direction_j)`
    /// — the same verdict [`PackedBasis::contains`] gives on the materialized
    /// extension.
    #[must_use]
    pub fn member_mask(&self, v: u64) -> u64 {
        if v & !self.low_mask != 0 {
            return 0;
        }
        // One shared reduction: remainder modulo the parent plus the pivot-bit
        // gather that is v's coordinate vector over the parent rows.
        let mut c = 0u64;
        let mut r = v;
        for (k, &(row, pivot)) in self.rows.iter().enumerate() {
            let bit = (v >> pivot) & 1;
            c |= bit << k;
            r ^= row & bit.wrapping_neg();
        }
        let coset_lanes = self.coset_lane_mask(r);
        if r != 0 && coset_lanes == 0 {
            // Neither in the parent nor in any direction's coset of it: a
            // member of no candidate. The common early exit.
            return 0;
        }
        let parity = self.parity_word(c);
        let mut mask = coset_lanes & !(parity ^ self.direction_parity);
        if r == 0 {
            mask |= !parity & self.lane_mask;
        }
        mask & self.lane_mask
    }

    /// Sums entry weights into every lane at once: lane `j` of the result is
    /// `Σ w` over the histogram entries `(v, w)` with `v` in lane `j`'s
    /// candidate — Eq. 4 for the whole block from one pre-grouped histogram.
    ///
    /// The histogram must have been grouped over the same parent this block
    /// was built from. Unlike a [`SlicedCosetBlock::member_mask`] sweep, this
    /// never visits entries outside the parent and its represented cosets:
    /// per block the work is `(|parent entries| + Σ |this block's coset
    /// entries|)` parity passes, not one test per histogram entry.
    #[must_use]
    pub fn sum_weights(&self, histogram: &CosetHistogram) -> Vec<u64> {
        debug_assert_eq!(
            self.rows, histogram.rows,
            "histogram was grouped over a different parent"
        );
        let mut sums = vec![0u64; self.lanes];
        // Entries inside the parent: candidates contain them through their
        // hyperplane (parity 0) or — for the rare in-parent directions —
        // through the direction's coset of the hyperplane.
        let rho0 = self.coset_lane_mask(0);
        for &(c, w) in &histogram.in_parent {
            let parity = self.parity_word(c);
            let mut mask = (!parity & self.lane_mask) | (rho0 & !(parity ^ self.direction_parity));
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                sums[lane] += w;
            }
        }
        // Entries in a direction's coset of the parent: only the lanes with
        // that direction remainder can contain them.
        for &(rho, rho_lanes) in &self.cosets {
            if rho == 0 {
                continue;
            }
            for &(c, w) in histogram.coset_group(rho) {
                let mut mask = rho_lanes & !(self.parity_word(c) ^ self.direction_parity);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    sums[lane] += w;
                }
            }
        }
        sums
    }

    /// [`SlicedCosetBlock::sum_weights`] with an incumbent bound: a lane
    /// whose running sum reaches `bound` is *saturated* — it stops
    /// accumulating, and once every lane is saturated the scan abandons the
    /// remaining entries (checked per entry in the in-parent pass and per
    /// coset group).
    ///
    /// Returns `(sums, saturated)` where bit `j` of `saturated` marks lane
    /// `j` as saturated. An unsaturated lane's sum is its exact Eq. 4 cost
    /// (running sums are monotone, so a lane with true cost `< bound` never
    /// saturates); a saturated lane's true cost is `≥ bound`.
    #[must_use]
    pub fn sum_weights_bounded(&self, histogram: &CosetHistogram, bound: u64) -> (Vec<u64>, u64) {
        debug_assert_eq!(
            self.rows, histogram.rows,
            "histogram was grouped over a different parent"
        );
        let mut sums = vec![0u64; self.lanes];
        let mut saturated = if bound == 0 { self.lane_mask } else { 0 };
        let rho0 = self.coset_lane_mask(0);
        if saturated != self.lane_mask {
            for &(c, w) in &histogram.in_parent {
                let parity = self.parity_word(c);
                let mut mask = ((!parity & self.lane_mask)
                    | (rho0 & !(parity ^ self.direction_parity)))
                    & !saturated;
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    sums[lane] += w;
                    if sums[lane] >= bound {
                        saturated |= 1u64 << lane;
                    }
                }
                if saturated == self.lane_mask {
                    return (sums, saturated);
                }
            }
        }
        for &(rho, rho_lanes) in &self.cosets {
            if rho == 0 || rho_lanes & !saturated == 0 {
                continue;
            }
            for &(c, w) in histogram.coset_group(rho) {
                let mut mask =
                    rho_lanes & !(self.parity_word(c) ^ self.direction_parity) & !saturated;
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    sums[lane] += w;
                    if sums[lane] >= bound {
                        saturated |= 1u64 << lane;
                    }
                }
                if saturated == self.lane_mask {
                    return (sums, saturated);
                }
            }
        }
        (sums, saturated)
    }

    /// XOR of the `alpha` planes selected by the set bits of a coordinate
    /// vector: bit `j` is `α_j · c`.
    #[inline]
    fn parity_word(&self, c: u64) -> u64 {
        let mut parity = 0u64;
        let mut rest = c;
        while rest != 0 {
            let k = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            parity ^= self.alpha[k];
        }
        parity
    }

    /// Mask of lanes whose direction remainder equals `rho` (0 when none).
    #[inline]
    fn coset_lane_mask(&self, rho: u64) -> u64 {
        match self.cosets.binary_search_by_key(&rho, |&(r, _)| r) {
            Ok(i) => self.cosets[i].1,
            Err(_) => 0,
        }
    }
}

/// Per-neighbourhood precomputation for coset-sliced pricing: the parent's
/// RREF rows plus one hyperplane functional per distinct retained hyperplane,
/// validated and solved **once** and shared by every block stamped from it.
///
/// A search neighbourhood has far more candidates than distinct hyperplanes
/// (`2^dim − 1` hyperplanes fan out over every direction), so recomputing
/// each lane's functional inside [`SlicedCosetBlock::new`] would dominate the
/// whole evaluation. The frame hoists that: [`CosetFrame::new`] pays the
/// `O(dim²)` validation and functional solve per *hyperplane*, and
/// [`CosetFrame::block`] then costs only a parent reduction and a handful of
/// word operations per *lane*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosetFrame {
    width: usize,
    /// Parent RREF rows paired with their pivot positions.
    rows: Vec<(u64, u32)>,
    /// The functional vanishing on hyperplane `h`, expressed on the parent's
    /// coordinates: bit `k` is 1 exactly when parent row `k` falls outside
    /// hyperplane `h`.
    alphas: Vec<u64>,
    /// Low `width` bits set.
    low_mask: u64,
}

impl CosetFrame {
    /// Builds a frame over `parent` for the given distinct hyperplanes —
    /// lanes passed to [`CosetFrame::block`] refer to them by index.
    ///
    /// # Panics
    ///
    /// Panics if the parent has dimension 0, or if any hyperplane is not in
    /// fact a hyperplane of the parent (wrong width or dimension, or not
    /// contained in it).
    #[must_use]
    pub fn new<'a>(
        parent: &PackedBasis,
        hyperplanes: impl IntoIterator<Item = &'a PackedBasis>,
    ) -> Self {
        let width = parent.width();
        let dim = parent.dim();
        assert!(dim >= 1, "a dimension-0 parent has no hyperplanes");
        let rows: Vec<(u64, u32)> = parent
            .rows()
            .iter()
            .map(|&row| (row, 63 - row.leading_zeros()))
            .collect();
        let alphas = hyperplanes
            .into_iter()
            .map(|hyperplane| {
                assert_eq!(
                    hyperplane.width(),
                    width,
                    "hyperplane width must match the parent"
                );
                assert_eq!(
                    hyperplane.dim(),
                    dim - 1,
                    "a hyperplane of the parent has dimension {}",
                    dim - 1
                );
                assert!(
                    parent.contains_subspace(hyperplane),
                    "hyperplane must lie inside the parent"
                );
                let mut a = 0u64;
                for (k, &(row, _)) in rows.iter().enumerate() {
                    if !hyperplane.contains(row) {
                        a |= 1u64 << k;
                    }
                }
                a
            })
            .collect();
        CosetFrame {
            width,
            rows,
            alphas,
            low_mask: mask_low(width),
        }
    }

    /// Ambient width of the parent.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Dimension of the parent.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Number of hyperplanes the frame carries functionals for.
    #[must_use]
    pub fn hyperplane_count(&self) -> usize {
        self.alphas.len()
    }

    /// Stamps a [`SlicedCosetBlock`] for 1..=[`SLICED_LANES`] lanes, each a
    /// `(hyperplane index, direction)` pair: lane `j`'s candidate is
    /// `hyperplane_{lanes[j].0} ⊕ span(lanes[j].1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or longer than [`SLICED_LANES`]; if a
    /// hyperplane index is out of range; if a direction has bits outside the
    /// ambient width; or if a direction lies inside its hyperplane (the
    /// candidate would not be an extension).
    #[must_use]
    pub fn block(&self, lanes: &[(usize, u64)]) -> SlicedCosetBlock {
        assert!(!lanes.is_empty(), "a coset block needs at least one lane");
        assert!(
            lanes.len() <= SLICED_LANES,
            "a coset block holds at most {SLICED_LANES} lanes, got {}",
            lanes.len()
        );
        let dim = self.rows.len();
        let mut alpha = vec![0u64; dim];
        let mut direction_parity = 0u64;
        let mut rho: Vec<(u64, u64)> = Vec::with_capacity(lanes.len());
        for (j, &(h, direction)) in lanes.iter().enumerate() {
            let lane_bit = 1u64 << j;
            let a = self.alphas[h];
            assert_eq!(
                direction & !self.low_mask,
                0,
                "direction {direction:#x} exceeds the ambient width"
            );
            // One reduction serves both the remainder ρ and the coordinate
            // gather feeding the parity q = α · c(direction).
            let mut c = 0u64;
            let mut r = direction;
            for (k, &(row, pivot)) in self.rows.iter().enumerate() {
                let bit = (direction >> pivot) & 1;
                c |= bit << k;
                r ^= row & bit.wrapping_neg();
            }
            let q = u64::from((a & c).count_ones() & 1);
            // direction ∈ hyperplane ⟺ it is in the parent (ρ = 0) and the
            // functional vanishes on it (q = 0).
            assert!(
                r != 0 || q == 1,
                "direction {direction:#x} lies inside its hyperplane"
            );
            for (k, slot) in alpha.iter_mut().enumerate() {
                *slot |= ((a >> k) & 1) * lane_bit;
            }
            direction_parity |= q << j;
            rho.push((r, lane_bit));
        }
        rho.sort_unstable_by_key(|&(r, _)| r);
        let mut cosets: Vec<(u64, u64)> = Vec::with_capacity(rho.len());
        for (r, bit) in rho {
            match cosets.last_mut() {
                Some(entry) if entry.0 == r => entry.1 |= bit,
                _ => cosets.push((r, bit)),
            }
        }
        SlicedCosetBlock {
            width: self.width,
            lanes: lanes.len(),
            rows: self.rows.clone(),
            alpha,
            direction_parity,
            cosets,
            lane_mask: mask_low(lanes.len()),
            low_mask: self.low_mask,
        }
    }
}

/// A weighted histogram grouped by remainder modulo one parent subspace —
/// the shared half of the coset-sliced neighbourhood scan.
///
/// Built once per `(parent, histogram)` pair and reused by every
/// [`SlicedCosetBlock`] over that parent: each entry `(v, w)` is tagged with
/// its parent remainder `reduce_P(v)` and coordinate vector `c(v)`, then
/// bucketed — entries inside the parent in one list, the rest grouped by
/// remainder. A block then visits only the buckets its lanes' directions
/// select, skipping the (typically vast) majority of entries whose remainder
/// matches no lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosetHistogram {
    /// Parent RREF rows with pivots, kept to assert block/histogram pairing.
    rows: Vec<(u64, u32)>,
    /// `(c, w)` for entries inside the parent (`reduce_P(v) = 0`).
    in_parent: Vec<(u64, u64)>,
    /// `(ρ, entries)` for the non-zero remainders, sorted by `ρ`; each entry
    /// is `(c, w)`.
    groups: Vec<(u64, Vec<(u64, u64)>)>,
}

impl CosetHistogram {
    /// Groups weighted entries by their remainder modulo `parent`.
    ///
    /// # Panics
    ///
    /// Panics if the parent has dimension 0 (no hyperplanes, so no
    /// [`SlicedCosetBlock`] could consume the grouping).
    #[must_use]
    pub fn new(parent: &PackedBasis, entries: impl IntoIterator<Item = (u64, u64)>) -> Self {
        assert!(parent.dim() >= 1, "a dimension-0 parent has no hyperplanes");
        let rows: Vec<(u64, u32)> = parent
            .rows()
            .iter()
            .map(|&row| (row, 63 - row.leading_zeros()))
            .collect();
        let mut tagged: Vec<(u64, u64, u64)> = entries
            .into_iter()
            .map(|(v, w)| {
                let mut c = 0u64;
                let mut r = v;
                for (k, &(row, pivot)) in rows.iter().enumerate() {
                    let bit = (v >> pivot) & 1;
                    c |= bit << k;
                    r ^= row & bit.wrapping_neg();
                }
                (r, c, w)
            })
            .collect();
        tagged.sort_unstable_by_key(|&(r, _, _)| r);
        let mut in_parent = Vec::new();
        let mut groups: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
        for (r, c, w) in tagged {
            if r == 0 {
                in_parent.push((c, w));
            } else {
                match groups.last_mut() {
                    Some((rho, group)) if *rho == r => group.push((c, w)),
                    _ => groups.push((r, vec![(c, w)])),
                }
            }
        }
        CosetHistogram {
            rows,
            in_parent,
            groups,
        }
    }

    /// Number of entries that lie inside the parent.
    #[must_use]
    pub fn in_parent_len(&self) -> usize {
        self.in_parent.len()
    }

    /// Number of distinct non-zero remainders observed.
    #[must_use]
    pub fn distinct_cosets(&self) -> usize {
        self.groups.len()
    }

    /// The `(c, w)` entries whose remainder is `rho` (empty when none; `rho`
    /// must be non-zero — in-parent entries live in their own bucket).
    fn coset_group(&self, rho: u64) -> &[(u64, u64)] {
        match self.groups.binary_search_by_key(&rho, |&(r, _)| r) {
            Ok(i) => &self.groups[i].1,
            Err(_) => &[],
        }
    }
}

/// Mask with the low `bits` bits set (`bits ≤ 64`).
fn mask_low(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exhaustively pins `member_mask` against per-lane `contains`.
    fn assert_matches_contains(bases: &[PackedBasis], width: usize) {
        let block = SlicedBlock::from_bases(bases.iter());
        assert_eq!(block.lanes(), bases.len());
        assert_eq!(block.width(), width);
        let top = if width >= 16 {
            1u64 << 16
        } else {
            1u64 << width
        };
        for v in 0..top {
            let expect = bases
                .iter()
                .enumerate()
                .fold(0u64, |m, (j, b)| m | (u64::from(b.contains(v)) << j));
            assert_eq!(block.member_mask(v), expect, "v={v:#x}");
        }
    }

    #[test]
    fn single_lane_matches_contains_exhaustively() {
        for width in [1usize, 2, 5, 8] {
            for dim in 0..=width {
                let basis = PackedBasis::standard_span(width, 0..dim);
                assert_matches_contains(std::slice::from_ref(&basis), width);
            }
        }
    }

    #[test]
    fn random_mixed_dimension_block_matches_contains() {
        let mut rng = StdRng::seed_from_u64(0x51CED);
        let width = 10;
        let bases: Vec<PackedBasis> = (0..17)
            .map(|i| random::random_subspace(&mut rng, width, i % (width + 1)).to_packed())
            .collect();
        assert_matches_contains(&bases, width);
    }

    #[test]
    fn sixty_four_lanes_fill_the_word() {
        let mut rng = StdRng::seed_from_u64(7);
        let width = 9;
        let bases: Vec<PackedBasis> = (0..SLICED_LANES)
            .map(|i| random::random_subspace(&mut rng, width, 1 + i % width).to_packed())
            .collect();
        let block = SlicedBlock::from_bases(bases.iter());
        assert_eq!(block.lane_mask(), u64::MAX);
        // The zero vector is in every subspace.
        assert_eq!(block.member_mask(0), u64::MAX);
        for v in [1u64, 0b101, 0x1FF] {
            let expect = bases
                .iter()
                .enumerate()
                .fold(0u64, |m, (j, b)| m | (u64::from(b.contains(v)) << j));
            assert_eq!(block.member_mask(v), expect);
        }
    }

    #[test]
    fn width_64_and_out_of_range_vectors() {
        let full = PackedBasis::standard_span(64, 0..64);
        let half = PackedBasis::standard_span(64, 0..32);
        let block = SlicedBlock::from_bases([&full, &half]);
        assert_eq!(block.member_mask(u64::MAX), 0b01);
        assert_eq!(block.member_mask(0xFFFF_FFFF), 0b11);
        // A narrow block rejects vectors outside its ambient width outright.
        let narrow = PackedBasis::standard_span(4, 0..4);
        let block = SlicedBlock::from_bases([&narrow]);
        assert_eq!(block.member_mask(0b1111), 0b1);
        assert_eq!(block.member_mask(0b1_0000), 0);
    }

    #[test]
    fn full_dimension_lanes_accept_everything() {
        let a = PackedBasis::standard_span(6, 0..6);
        let b = PackedBasis::standard_span(6, 0..6);
        let block = SlicedBlock::from_bases([&a, &b]);
        assert_eq!(block.checks(), 0);
        for v in 0..(1u64 << 6) {
            assert_eq!(block.member_mask(v), 0b11);
        }
    }

    #[test]
    fn from_extensions_matches_materialized_bases() {
        let mut rng = StdRng::seed_from_u64(0xE17);
        let width = 8;
        let hyperplane = random::random_subspace(&mut rng, width, 4).to_packed();
        let directions: Vec<u64> = (0..(1u64 << width))
            .filter(|&v| !hyperplane.contains(v))
            .take(5)
            .collect();
        let block = SlicedBlock::from_extensions(&hyperplane, &directions);
        let materialized: Vec<PackedBasis> =
            directions.iter().map(|&d| hyperplane.extended(d)).collect();
        let reference = SlicedBlock::from_bases(materialized.iter());
        for v in 0..(1u64 << width) {
            assert_eq!(block.member_mask(v), reference.member_mask(v), "v={v:#x}");
        }
    }

    /// Exhaustively pins a coset block against `contains` on the materialized
    /// extensions.
    fn assert_coset_matches_contains(parent: &PackedBasis, lanes: &[(&PackedBasis, u64)]) {
        let width = parent.width();
        let block = SlicedCosetBlock::new(parent, lanes);
        assert_eq!(block.lanes(), lanes.len());
        assert_eq!(block.width(), width);
        let materialized: Vec<PackedBasis> = lanes
            .iter()
            .map(|&(hyperplane, direction)| hyperplane.extended(direction))
            .collect();
        for v in 0..(1u64 << width) {
            let expect = materialized
                .iter()
                .enumerate()
                .fold(0u64, |m, (j, b)| m | (u64::from(b.contains(v)) << j));
            assert_eq!(block.member_mask(v), expect, "v={v:#x}");
        }
        // Out-of-width vectors are members of nothing.
        if width < 64 {
            assert_eq!(block.member_mask(1u64 << width), 0);
        }
    }

    #[test]
    fn coset_block_matches_contains_over_every_hyperplane_and_direction() {
        let mut rng = StdRng::seed_from_u64(0xC05E7);
        for width in [4usize, 7, 10] {
            for dim in 1..=4 {
                let parent = random::random_subspace(&mut rng, width, dim).to_packed();
                let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
                // All (hyperplane, direction) pairs over directions outside
                // each hyperplane — including directions *inside* the parent,
                // whose candidate degenerates to the parent itself.
                let mut lanes: Vec<(&PackedBasis, u64)> = Vec::new();
                for hyperplane in &hyperplanes {
                    for v in 1..(1u64 << width) {
                        if !hyperplane.contains(v) {
                            lanes.push((hyperplane, v));
                        }
                        if lanes.len() == SLICED_LANES {
                            break;
                        }
                    }
                    if lanes.len() == SLICED_LANES {
                        break;
                    }
                }
                assert_coset_matches_contains(&parent, &lanes);
            }
        }
    }

    #[test]
    fn coset_block_matches_the_generic_sliced_block() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let width = 9;
        let parent = random::random_subspace(&mut rng, width, 5).to_packed();
        let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
        let directions: Vec<u64> = (1..(1u64 << width))
            .filter(|&v| !parent.contains(v))
            .take(4)
            .collect();
        let lanes: Vec<(&PackedBasis, u64)> = hyperplanes
            .iter()
            .flat_map(|h| directions.iter().map(move |&d| (h, d)))
            .take(SLICED_LANES)
            .collect();
        let materialized: Vec<PackedBasis> = lanes.iter().map(|&(h, d)| h.extended(d)).collect();
        let coset = SlicedCosetBlock::new(&parent, &lanes);
        let generic = SlicedBlock::from_bases(materialized.iter());
        assert_eq!(coset.lane_mask(), generic.lane_mask());
        for v in 0..(1u64 << width) {
            assert_eq!(coset.member_mask(v), generic.member_mask(v), "v={v:#x}");
        }
    }

    #[test]
    fn coset_block_handles_width_64_parents() {
        let parent = PackedBasis::standard_span(64, 32..64);
        let hyperplane = PackedBasis::standard_span(64, 33..64);
        let lanes = [(&hyperplane, 1u64 << 3), (&hyperplane, 1u64 << 32)];
        let block = SlicedCosetBlock::new(&parent, &lanes);
        // e_3 ⊕ e_33 is in lane 0 (e_3 joined the span), not lane 1.
        assert_eq!(block.member_mask((1 << 3) | (1 << 33)), 0b01);
        // e_32 ⊕ e_33: lane 1's direction re-extends to the parent.
        assert_eq!(block.member_mask((1 << 32) | (1 << 33)), 0b10);
        assert_eq!(block.member_mask(0), 0b11);
    }

    #[test]
    fn frame_block_matches_the_standalone_constructor() {
        let mut rng = StdRng::seed_from_u64(0xF4A3E);
        let width = 11;
        let parent = random::random_subspace(&mut rng, width, 4).to_packed();
        let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
        let directions: Vec<u64> = (1..(1u64 << width))
            .filter(|&v| !parent.contains(v))
            .take(6)
            .collect();
        // Many lanes per distinct hyperplane — the shape the frame exists for.
        let indexed: Vec<(usize, u64)> = (0..hyperplanes.len())
            .flat_map(|h| directions.iter().map(move |&d| (h, d)))
            .take(SLICED_LANES)
            .collect();
        let frame = CosetFrame::new(&parent, &hyperplanes);
        assert_eq!(frame.width(), width);
        assert_eq!(frame.dim(), 4);
        assert_eq!(frame.hyperplane_count(), hyperplanes.len());
        let expanded: Vec<(&PackedBasis, u64)> =
            indexed.iter().map(|&(h, d)| (&hyperplanes[h], d)).collect();
        assert_eq!(
            frame.block(&indexed),
            SlicedCosetBlock::new(&parent, &expanded)
        );
    }

    #[test]
    fn sum_weights_matches_a_member_mask_sweep() {
        let mut rng = StdRng::seed_from_u64(0x5A11E);
        let width = 10;
        for dim in 2..=5 {
            let parent = random::random_subspace(&mut rng, width, dim).to_packed();
            let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
            let lanes: Vec<(usize, u64)> = (0..hyperplanes.len())
                .flat_map(|h| {
                    let hyperplane = &hyperplanes[h];
                    (1..(1u64 << width))
                        .filter(move |&v| !hyperplane.contains(v))
                        .take(3)
                        .map(move |d| (h, d))
                })
                .take(SLICED_LANES)
                .collect();
            let frame = CosetFrame::new(&parent, &hyperplanes);
            let block = frame.block(&lanes);
            // A synthetic weighted histogram covering every vector, so both
            // the in-parent and every coset bucket are exercised.
            let entries: Vec<(u64, u64)> = (0..(1u64 << width)).map(|v| (v, v % 7 + 1)).collect();
            let histogram = CosetHistogram::new(&parent, entries.iter().copied());
            // Every parent vector (including zero) appears as an entry here.
            assert_eq!(histogram.in_parent_len(), 1usize << dim);
            let mut expect = vec![0u64; lanes.len()];
            for &(v, w) in &entries {
                let mut mask = block.member_mask(v);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    expect[lane] += w;
                }
            }
            assert_eq!(block.sum_weights(&histogram), expect, "dim={dim}");
        }
    }

    #[test]
    fn bounded_sum_weights_is_exact_below_the_bound_and_saturated_above() {
        let mut rng = StdRng::seed_from_u64(0xB0D);
        let width = 10;
        for dim in 2..=5 {
            let parent = random::random_subspace(&mut rng, width, dim).to_packed();
            let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
            let lanes: Vec<(usize, u64)> = (0..hyperplanes.len())
                .flat_map(|h| {
                    let hyperplane = &hyperplanes[h];
                    (1..(1u64 << width))
                        .filter(move |&v| !hyperplane.contains(v))
                        .take(3)
                        .map(move |d| (h, d))
                })
                .take(SLICED_LANES)
                .collect();
            let frame = CosetFrame::new(&parent, &hyperplanes);
            let block = frame.block(&lanes);
            let entries: Vec<(u64, u64)> = (0..(1u64 << width)).map(|v| (v, v % 7 + 1)).collect();
            let histogram = CosetHistogram::new(&parent, entries.iter().copied());
            let exact = block.sum_weights(&histogram);
            let lo = *exact.iter().min().unwrap();
            let hi = *exact.iter().max().unwrap();
            // Bounds straddling the cost range, plus the degenerate extremes.
            for bound in [0, lo, lo + 1, lo + (hi - lo) / 2, hi, hi + 1] {
                let (sums, saturated) = block.sum_weights_bounded(&histogram, bound);
                for (lane, &true_cost) in exact.iter().enumerate() {
                    if saturated & (1u64 << lane) == 0 {
                        assert_eq!(sums[lane], true_cost, "dim={dim} bound={bound} lane={lane}");
                        assert!(true_cost < bound);
                    } else {
                        assert!(true_cost >= bound, "dim={dim} bound={bound} lane={lane}");
                        assert!(sums[lane] >= bound || bound == 0);
                    }
                }
            }
            // A bound above every cost completes exactly.
            let (sums, saturated) = block.sum_weights_bounded(&histogram, hi + 1);
            assert_eq!(sums, exact);
            assert_eq!(saturated, 0);
            // A zero bound abandons immediately with every lane saturated.
            let (sums, saturated) = block.sum_weights_bounded(&histogram, 0);
            assert_eq!(sums, vec![0u64; block.lanes()]);
            assert_eq!(saturated, block.lane_mask());
        }
    }

    #[test]
    fn generic_block_sum_weights_matches_member_mask_sweep_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0x6E4E);
        let width = 9;
        let bases: Vec<PackedBasis> = (0..23)
            .map(|i| random::random_subspace(&mut rng, width, 1 + i % width).to_packed())
            .collect();
        let block = SlicedBlock::from_bases(bases.iter());
        let entries: Vec<(u64, u64)> = (0..(1u64 << width)).map(|v| (v, v % 5 + 1)).collect();
        let mut expect = vec![0u64; bases.len()];
        for &(v, w) in &entries {
            let mut mask = block.member_mask(v);
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                expect[lane] += w;
            }
        }
        let exact = block.sum_weights(entries.iter().copied());
        assert_eq!(exact, expect);
        let hi = *exact.iter().max().unwrap();
        for bound in [0, 1, hi / 2, hi, hi + 1] {
            let (sums, saturated) = block.sum_weights_bounded(entries.iter().copied(), bound);
            for (lane, &true_cost) in exact.iter().enumerate() {
                if saturated & (1u64 << lane) == 0 {
                    assert_eq!(sums[lane], true_cost, "bound={bound} lane={lane}");
                } else {
                    assert!(true_cost >= bound, "bound={bound} lane={lane}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the ambient width")]
    fn frame_direction_outside_width_panics() {
        let parent = PackedBasis::standard_span(8, 0..2);
        let hyperplanes: Vec<PackedBasis> = parent.hyperplanes().collect();
        let frame = CosetFrame::new(&parent, &hyperplanes);
        let _ = frame.block(&[(0, 1u64 << 9)]);
    }

    #[test]
    #[should_panic(expected = "inside its hyperplane")]
    fn coset_direction_inside_hyperplane_panics() {
        let parent = PackedBasis::standard_span(8, 0..2);
        let hyperplane = PackedBasis::standard_span(8, 0..1);
        let _ = SlicedCosetBlock::new(&parent, &[(&hyperplane, 1)]);
    }

    #[test]
    #[should_panic(expected = "inside the parent")]
    fn coset_foreign_hyperplane_panics() {
        let parent = PackedBasis::standard_span(8, 0..2);
        let foreign = PackedBasis::standard_span(8, [5usize]);
        let _ = SlicedCosetBlock::new(&parent, &[(&foreign, 1 << 6)]);
    }

    #[test]
    #[should_panic(expected = "no hyperplanes")]
    fn coset_trivial_parent_panics() {
        let parent = PackedBasis::trivial(8);
        let hyperplane = PackedBasis::trivial(8);
        let _ = SlicedCosetBlock::new(&parent, &[(&hyperplane, 1)]);
    }

    #[test]
    #[should_panic(expected = "share one width")]
    fn mismatched_widths_panic() {
        let a = PackedBasis::trivial(8);
        let b = PackedBasis::trivial(9);
        let _ = SlicedBlock::from_bases([&a, &b]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_block_panics() {
        let _ = SlicedBlock::from_bases(std::iter::empty());
    }
}
