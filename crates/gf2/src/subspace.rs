//! Linear subspaces of GF(2)^n in canonical form.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitMatrix, BitVec};

/// A linear subspace of GF(2)^n, stored as a canonical (reduced row-echelon)
/// basis.
///
/// The design space explored by the XOR-indexing search consists of *null
/// spaces* rather than matrices: distinct matrices with the same null space
/// cause exactly the same conflict misses (paper Section 2), and there are far
/// fewer subspaces than matrices. Canonicalizing the basis makes equal
/// subspaces compare and hash equal, so a search never evaluates the same
/// function twice.
///
/// # Example
///
/// ```
/// use gf2::{BitVec, Subspace};
///
/// let s = Subspace::from_generators(4, &[
///     BitVec::from_u64(0b0011, 4),
///     BitVec::from_u64(0b0110, 4),
///     BitVec::from_u64(0b0101, 4), // dependent on the first two
/// ]);
/// assert_eq!(s.dim(), 2);
/// assert!(s.contains(BitVec::from_u64(0b0101, 4)));
/// assert!(!s.contains(BitVec::from_u64(0b1000, 4)));
/// assert_eq!(s.vectors().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subspace {
    /// Canonical basis: RREF rows sorted by strictly decreasing leading bit.
    basis: Vec<BitVec>,
    ambient_width: usize,
}

impl Subspace {
    /// The trivial subspace `{0}` of GF(2)^width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
    #[must_use]
    pub fn trivial(width: usize) -> Self {
        // Constructing a BitVec validates the width.
        let _ = BitVec::zero(width);
        Subspace {
            basis: Vec::new(),
            ambient_width: width,
        }
    }

    /// The full space GF(2)^width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
    #[must_use]
    pub fn full(width: usize) -> Self {
        let gens: Vec<BitVec> = (0..width).map(|i| BitVec::unit(i, width)).collect();
        Self::from_generators(width, &gens)
    }

    /// The span of the standard basis vectors `e_k` for the given bit indices.
    ///
    /// `standard_span(n, 0..m)` is the null space of the conventional tag
    /// function (paper Section 4).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= width` or the width is unsupported.
    #[must_use]
    pub fn standard_span(width: usize, bits: impl IntoIterator<Item = usize>) -> Self {
        let gens: Vec<BitVec> = bits.into_iter().map(|i| BitVec::unit(i, width)).collect();
        Self::from_generators(width, &gens)
    }

    /// Builds the subspace spanned by the given generators (which may be
    /// dependent, repeated, or zero).
    ///
    /// # Panics
    ///
    /// Panics if a generator's width differs from `width`, or if the width is
    /// unsupported.
    #[must_use]
    pub fn from_generators(width: usize, generators: &[BitVec]) -> Self {
        let _ = BitVec::zero(width);
        let mut basis: Vec<BitVec> = Vec::new();
        for &g in generators {
            assert_eq!(
                g.width(),
                width,
                "generator width {} does not match ambient width {width}",
                g.width()
            );
        }
        // Incremental Gaussian elimination keeping rows sorted by leading bit.
        for &g in generators {
            Self::insert_reduced(&mut basis, g);
        }
        Self::recanonicalize(&mut basis);
        Subspace {
            basis,
            ambient_width: width,
        }
    }

    /// Reduces `v` against `basis` and inserts the remainder if non-zero,
    /// keeping `basis` sorted by strictly decreasing leading bit.
    fn insert_reduced(basis: &mut Vec<BitVec>, mut v: BitVec) {
        loop {
            let Some(lv) = v.leading_bit() else { return };
            match basis.iter().position(|b| b.leading_bit() == Some(lv)) {
                // XOR-ing a vector with the same leading bit strictly lowers
                // v's leading bit, so this loop terminates.
                Some(i) => v ^= basis[i],
                None => {
                    let pos = basis
                        .iter()
                        .position(|b| b.leading_bit() < Some(lv))
                        .unwrap_or(basis.len());
                    basis.insert(pos, v);
                    return;
                }
            }
        }
    }

    /// Back-substitutes so each leading bit appears in exactly one basis vector.
    fn recanonicalize(basis: &mut [BitVec]) {
        for i in (0..basis.len()).rev() {
            let lead = basis[i].leading_bit().expect("basis vectors are non-zero");
            for j in 0..i {
                if basis[j].get(lead) {
                    basis[j] ^= basis[i];
                }
            }
        }
    }

    /// Dimension of the subspace.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Codimension (`ambient_width - dim`).
    #[must_use]
    pub fn codim(&self) -> usize {
        self.ambient_width - self.basis.len()
    }

    /// Width of the ambient space GF(2)^n.
    #[must_use]
    pub fn ambient_width(&self) -> usize {
        self.ambient_width
    }

    /// `true` for the trivial subspace `{0}`.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.basis.is_empty()
    }

    /// The canonical basis, sorted by strictly decreasing leading bit.
    #[must_use]
    pub fn basis(&self) -> &[BitVec] {
        &self.basis
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v.width()` differs from the ambient width.
    #[must_use]
    pub fn contains(&self, v: BitVec) -> bool {
        assert_eq!(v.width(), self.ambient_width, "ambient width mismatch");
        self.reduce(v).is_zero()
    }

    /// Reduces `v` modulo the subspace: the returned vector is zero exactly
    /// when `v` is a member.
    #[must_use]
    pub fn reduce(&self, mut v: BitVec) -> BitVec {
        // The basis is sorted by strictly decreasing leading bit and each
        // leading bit occurs in exactly one basis vector, so a single
        // high-to-low pass fully reduces v.
        for b in &self.basis {
            let lead = b.leading_bit().expect("basis vectors are non-zero");
            if v.get(lead) {
                v ^= *b;
            }
        }
        v
    }

    /// `true` when every vector of `other` lies in `self`.
    ///
    /// # Panics
    ///
    /// Panics if the ambient widths differ.
    #[must_use]
    pub fn contains_subspace(&self, other: &Subspace) -> bool {
        assert_eq!(self.ambient_width, other.ambient_width);
        other.basis.iter().all(|&b| self.contains(b))
    }

    /// Sum (join) of two subspaces: the span of both bases.
    ///
    /// # Panics
    ///
    /// Panics if the ambient widths differ.
    #[must_use]
    pub fn sum(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient_width, other.ambient_width);
        let mut gens = self.basis.clone();
        gens.extend_from_slice(&other.basis);
        Subspace::from_generators(self.ambient_width, &gens)
    }

    /// Span of this subspace and one extra vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.width()` differs from the ambient width.
    #[must_use]
    pub fn extended(&self, v: BitVec) -> Subspace {
        assert_eq!(v.width(), self.ambient_width, "ambient width mismatch");
        let mut gens = self.basis.clone();
        gens.push(v);
        Subspace::from_generators(self.ambient_width, &gens)
    }

    /// Intersection (meet) of two subspaces.
    ///
    /// Uses the identity `U ∩ V = (U^⊥ + V^⊥)^⊥`, which is exact over GF(2)
    /// for the standard bilinear form even though that form is degenerate on
    /// some subspaces, because `dim S^⊥ = n − dim S` always holds.
    ///
    /// # Panics
    ///
    /// Panics if the ambient widths differ.
    #[must_use]
    pub fn intersection(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient_width, other.ambient_width);
        self.orthogonal_complement()
            .sum(&other.orthogonal_complement())
            .orthogonal_complement()
    }

    /// Orthogonal complement with respect to the standard GF(2) inner product.
    #[must_use]
    pub fn orthogonal_complement(&self) -> Subspace {
        if self.basis.is_empty() {
            return Subspace::full(self.ambient_width);
        }
        let m = BitMatrix::from_rows(&self.basis).expect("non-empty canonical basis");
        m.kernel()
    }

    /// Iterates over all `2^dim` vectors of the subspace, starting with zero.
    ///
    /// Enumeration follows a Gray code, so consecutive vectors differ by a
    /// single basis vector; this keeps full-null-space miss estimation cheap.
    #[must_use]
    pub fn vectors(&self) -> SubspaceVectors<'_> {
        SubspaceVectors {
            space: self,
            index: 0,
            count: 1u64 << self.basis.len(),
            current: BitVec::zero(self.ambient_width),
        }
    }

    /// Enumerates all hyperplanes (subspaces of dimension `dim − 1`) of this
    /// subspace.
    ///
    /// Each non-zero linear functional on the subspace (there are `2^dim − 1`)
    /// determines one hyperplane; distinct functionals give distinct
    /// hyperplanes.
    #[must_use]
    pub fn hyperplanes(&self) -> Vec<Subspace> {
        let d = self.dim();
        if d == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity((1usize << d) - 1);
        for functional in 1u64..(1u64 << d) {
            // Pick the lowest basis index with a non-zero coefficient.
            let j = functional.trailing_zeros() as usize;
            let mut gens = Vec::with_capacity(d - 1);
            for i in 0..d {
                if i == j {
                    continue;
                }
                if (functional >> i) & 1 == 1 {
                    gens.push(self.basis[i] ^ self.basis[j]);
                } else {
                    gens.push(self.basis[i]);
                }
            }
            out.push(Subspace::from_generators(self.ambient_width, &gens));
        }
        out
    }

    /// Dimension of the intersection with `other` without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the ambient widths differ.
    #[must_use]
    pub fn intersection_dim(&self, other: &Subspace) -> usize {
        // dim(U ∩ V) = dim U + dim V − dim(U + V)
        self.dim() + other.dim() - self.sum(other).dim()
    }

    /// `true` when this subspace intersects `span(e_0, …, e_{m-1})` only in
    /// the zero vector — the defining property (Eq. 5) of the null space of a
    /// permutation-based hash function.
    ///
    /// Evaluated without materializing the intersection: the intersection
    /// with the low span is trivial exactly when projecting the basis onto
    /// the high bits `m..n` keeps it linearly independent (a dependency among
    /// the projections is a non-zero member supported on the low bits, and
    /// vice versa). The projected rank is computed with an incremental
    /// [`crate::PackedBasis`], making this pre-filter cheap enough for the
    /// search's neighbourhood generation hot path.
    #[must_use]
    pub fn admits_permutation_based_function(&self, m: usize) -> bool {
        if self.basis.is_empty() {
            return true;
        }
        let high_mask = if m >= 64 { 0 } else { u64::MAX << m };
        let mut projected = crate::PackedBasis::trivial(self.ambient_width);
        self.basis
            .iter()
            .all(|b| projected.insert(b.as_u64() & high_mask))
    }

    /// Packs this subspace's canonical basis into a [`crate::PackedBasis`] —
    /// convenience alias for [`crate::PackedBasis::from_subspace`].
    #[must_use]
    pub fn to_packed(&self) -> crate::PackedBasis {
        crate::PackedBasis::from_subspace(self)
    }
}

impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span{{")?;
        for (i, b) in self.basis.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}} ⊆ GF(2)^{}", self.ambient_width)
    }
}

/// Iterator over the vectors of a [`Subspace`], produced by
/// [`Subspace::vectors`].
#[derive(Debug, Clone)]
pub struct SubspaceVectors<'a> {
    space: &'a Subspace,
    index: u64,
    count: u64,
    current: BitVec,
}

impl Iterator for SubspaceVectors<'_> {
    type Item = BitVec;

    fn next(&mut self) -> Option<BitVec> {
        if self.index >= self.count {
            return None;
        }
        if self.index > 0 {
            // Gray code: between index-1 and index exactly one coordinate flips.
            let prev_gray = (self.index - 1) ^ ((self.index - 1) >> 1);
            let gray = self.index ^ (self.index >> 1);
            let changed = (prev_gray ^ gray).trailing_zeros() as usize;
            self.current ^= self.space.basis[changed];
        }
        self.index += 1;
        Some(self.current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.count - self.index) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SubspaceVectors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn trivial_and_full() {
        let t = Subspace::trivial(8);
        assert_eq!(t.dim(), 0);
        assert!(t.is_trivial());
        assert!(t.contains(BitVec::zero(8)));
        assert!(!t.contains(BitVec::unit(1, 8)));

        let f = Subspace::full(8);
        assert_eq!(f.dim(), 8);
        for bits in [0u64, 1, 0xFF, 0xA5] {
            assert!(f.contains(BitVec::from_u64(bits, 8)));
        }
    }

    #[test]
    fn canonical_form_is_generator_order_independent() {
        let g1 = [
            BitVec::from_u64(0b1100, 4),
            BitVec::from_u64(0b0110, 4),
            BitVec::from_u64(0b1010, 4),
        ];
        let g2 = [BitVec::from_u64(0b0110, 4), BitVec::from_u64(0b1010, 4)];
        let s1 = Subspace::from_generators(4, &g1);
        let s2 = Subspace::from_generators(4, &g2);
        assert_eq!(s1, s2);
        assert_eq!(s1.dim(), 2);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        s1.hash(&mut h1);
        s2.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn membership_matches_exhaustive_span() {
        let gens = [
            BitVec::from_u64(0b00110, 5),
            BitVec::from_u64(0b01100, 5),
            BitVec::from_u64(0b10001, 5),
        ];
        let s = Subspace::from_generators(5, &gens);
        // Exhaustive span.
        let mut span = HashSet::new();
        for mask in 0u32..8 {
            let mut v = BitVec::zero(5);
            for (i, g) in gens.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    v ^= *g;
                }
            }
            span.insert(v);
        }
        for bits in 0..32u64 {
            let v = BitVec::from_u64(bits, 5);
            assert_eq!(s.contains(v), span.contains(&v), "vector {bits:05b}");
        }
        assert_eq!(span.len(), 1 << s.dim());
    }

    #[test]
    fn vectors_enumerates_exactly_the_span() {
        let s = Subspace::from_generators(
            6,
            &[
                BitVec::from_u64(0b000111, 6),
                BitVec::from_u64(0b011100, 6),
                BitVec::from_u64(0b110000, 6),
            ],
        );
        let vecs: HashSet<BitVec> = s.vectors().collect();
        assert_eq!(vecs.len(), 1 << s.dim());
        assert_eq!(s.vectors().len(), 1 << s.dim());
        for v in &vecs {
            assert!(s.contains(*v));
        }
        assert!(vecs.contains(&BitVec::zero(6)));
    }

    #[test]
    fn sum_and_intersection_dimensions() {
        let u = Subspace::standard_span(6, [0, 1, 2]);
        let v = Subspace::standard_span(6, [2, 3, 4]);
        let sum = u.sum(&v);
        let inter = u.intersection(&v);
        assert_eq!(sum.dim(), 5);
        assert_eq!(inter.dim(), 1);
        assert!(inter.contains(BitVec::unit(2, 6)));
        assert_eq!(u.intersection_dim(&v), 1);
        // dim(U) + dim(V) = dim(U+V) + dim(U∩V)
        assert_eq!(u.dim() + v.dim(), sum.dim() + inter.dim());
    }

    #[test]
    fn intersection_with_xor_heavy_spaces() {
        // U = span{1100, 0011}, V = span{1111, 1010}; U ∩ V = span{1111}.
        let u = Subspace::from_generators(
            4,
            &[BitVec::from_u64(0b1100, 4), BitVec::from_u64(0b0011, 4)],
        );
        let v = Subspace::from_generators(
            4,
            &[BitVec::from_u64(0b1111, 4), BitVec::from_u64(0b1010, 4)],
        );
        let inter = u.intersection(&v);
        assert_eq!(inter.dim(), 1);
        assert!(inter.contains(BitVec::from_u64(0b1111, 4)));
    }

    #[test]
    fn orthogonal_complement_dimension_and_double_complement() {
        let s = Subspace::from_generators(
            8,
            &[
                BitVec::from_u64(0b0000_1111, 8),
                BitVec::from_u64(0b1111_0000, 8),
                BitVec::from_u64(0b1010_1010, 8),
            ],
        );
        let c = s.orthogonal_complement();
        assert_eq!(c.dim(), 8 - s.dim());
        assert_eq!(c.orthogonal_complement(), s);
        // Complement of the trivial space is everything and vice versa.
        assert_eq!(
            Subspace::trivial(8).orthogonal_complement(),
            Subspace::full(8)
        );
        assert_eq!(
            Subspace::full(8).orthogonal_complement(),
            Subspace::trivial(8)
        );
    }

    #[test]
    fn hyperplane_count_and_dimension() {
        let s = Subspace::standard_span(8, [0, 2, 4]);
        let hps = s.hyperplanes();
        assert_eq!(hps.len(), (1 << 3) - 1);
        let distinct: HashSet<_> = hps.iter().cloned().collect();
        assert_eq!(distinct.len(), hps.len(), "hyperplanes must be distinct");
        for h in &hps {
            assert_eq!(h.dim(), 2);
            assert!(s.contains_subspace(h));
        }
        assert!(Subspace::trivial(4).hyperplanes().is_empty());
    }

    #[test]
    fn extended_grows_dimension_only_for_outside_vectors() {
        let s = Subspace::standard_span(6, [0, 1]);
        assert_eq!(s.extended(BitVec::from_u64(0b11, 6)).dim(), 2);
        assert_eq!(s.extended(BitVec::unit(5, 6)).dim(), 3);
    }

    #[test]
    fn permutation_based_admission() {
        // The null space of the modulo function is span(e_m..e_{n-1}), which
        // intersects span(e_0..e_{m-1}) trivially.
        let ns = Subspace::standard_span(16, 4..16);
        assert!(ns.admits_permutation_based_function(4));
        // A null space containing e_0 cannot be permutation-based.
        let bad = Subspace::standard_span(16, [0usize, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        assert!(!bad.admits_permutation_based_function(4));
    }

    #[test]
    fn display_mentions_ambient_space() {
        let s = Subspace::standard_span(4, [1]);
        let text = s.to_string();
        assert!(text.contains("GF(2)^4"));
        assert!(text.contains("0b0010"));
    }

    #[test]
    fn contains_subspace_is_reflexive_and_orders() {
        let small = Subspace::standard_span(6, [1, 2]);
        let big = Subspace::standard_span(6, [0, 1, 2, 3]);
        assert!(big.contains_subspace(&small));
        assert!(!small.contains_subspace(&big));
        assert!(small.contains_subspace(&small));
        assert!(small.contains_subspace(&Subspace::trivial(6)));
    }
}
