//! Fixed-width bit vectors over GF(2).

use std::fmt;
use std::ops::{BitAnd, BitXor, BitXorAssign};

use serde::{Deserialize, Serialize};

use crate::{Gf2Error, Result};

/// A vector over GF(2) with a fixed width of at most 64 bits.
///
/// Bit `i` of the vector corresponds to address bit `a_i` in the paper's
/// notation, with bit 0 the least significant address bit. Addition in GF(2)
/// is XOR ([`BitXor`]), and the inner product of two vectors is the parity of
/// the AND of their bits ([`BitVec::dot`]).
///
/// `BitVec` is `Copy` and cheap to pass by value.
///
/// # Example
///
/// ```
/// use gf2::BitVec;
///
/// let a = BitVec::from_u64(0b1011, 4);
/// let b = BitVec::from_u64(0b0110, 4);
/// assert_eq!((a ^ b).as_u64(), 0b1101);
/// assert_eq!(a.dot(b), true); // 0b0010 has odd parity
/// assert_eq!(a.weight(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitVec {
    bits: u64,
    width: u8,
}

impl BitVec {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: usize = 64;

    /// Creates the zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
    #[must_use]
    pub fn zero(width: usize) -> Self {
        Self::check_width(width);
        BitVec {
            bits: 0,
            width: width as u8,
        }
    }

    /// Creates a vector from the low `width` bits of `value`.
    ///
    /// Bits of `value` above `width` are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or larger than [`BitVec::MAX_WIDTH`].
    #[must_use]
    pub fn from_u64(value: u64, width: usize) -> Self {
        Self::check_width(width);
        BitVec {
            bits: value & Self::mask(width),
            width: width as u8,
        }
    }

    /// Creates the `k`-th standard basis vector `e_k` of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `k >= width` or the width is unsupported.
    #[must_use]
    pub fn unit(k: usize, width: usize) -> Self {
        Self::check_width(width);
        assert!(k < width, "unit index {k} out of range for width {width}");
        BitVec {
            bits: 1 << k,
            width: width as u8,
        }
    }

    /// Creates a vector with the given bits set.
    ///
    /// # Panics
    ///
    /// Panics if any bit index is `>= width` or the width is unsupported.
    #[must_use]
    pub fn with_bits(bits: &[usize], width: usize) -> Self {
        let mut v = Self::zero(width);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    /// Fallible counterpart of [`BitVec::from_u64`].
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::UnsupportedWidth`] when `width` is 0 or above 64.
    pub fn try_from_u64(value: u64, width: usize) -> Result<Self> {
        if width == 0 || width > Self::MAX_WIDTH {
            return Err(Gf2Error::UnsupportedWidth(width));
        }
        Ok(Self::from_u64(value, width))
    }

    fn check_width(width: usize) {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "unsupported BitVec width {width}"
        );
    }

    fn mask(width: usize) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Returns the vector's width in bits.
    #[must_use]
    pub fn width(self) -> usize {
        self.width as usize
    }

    /// Returns the raw bits as a `u64` (bits above the width are zero).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.bits
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn get(self, i: usize) -> bool {
        assert!(i < self.width(), "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.width(), "bit index {i} out of range");
        if value {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Returns a copy with bit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn flipped(self, i: usize) -> Self {
        assert!(i < self.width(), "bit index {i} out of range");
        BitVec {
            bits: self.bits ^ (1 << i),
            width: self.width,
        }
    }

    /// Returns `true` when every bit is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Returns the Hamming weight (number of set bits).
    #[must_use]
    pub fn weight(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Inner product over GF(2): the parity of the AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn dot(self, other: Self) -> bool {
        assert_eq!(self.width, other.width, "dot product requires equal widths");
        (self.bits & other.bits).count_ones() % 2 == 1
    }

    /// Index of the highest set bit, or `None` for the zero vector.
    #[must_use]
    pub fn leading_bit(self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            Some(63 - self.bits.leading_zeros() as usize)
        }
    }

    /// Index of the lowest set bit, or `None` for the zero vector.
    #[must_use]
    pub fn trailing_bit(self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            Some(self.bits.trailing_zeros() as usize)
        }
    }

    /// Returns a vector of the same bits truncated or zero-extended to `width`.
    ///
    /// Truncation keeps the low-order bits, mirroring how the profiling
    /// algorithm truncates conflict vectors to the hashed address width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is unsupported.
    #[must_use]
    pub fn resized(self, width: usize) -> Self {
        Self::from_u64(self.bits, width)
    }

    /// Iterates over the indices of the set bits, lowest first.
    #[must_use]
    pub fn set_bits(self) -> SetBits {
        SetBits { bits: self.bits }
    }
}

/// Iterator over the set-bit indices of a [`BitVec`], produced by
/// [`BitVec::set_bits`].
#[derive(Debug, Clone)]
pub struct SetBits {
    bits: u64,
}

impl Iterator for SetBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            let i = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetBits {}

impl BitXor for BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: BitVec) -> BitVec {
        assert_eq!(self.width, rhs.width, "xor requires equal widths");
        BitVec {
            bits: self.bits ^ rhs.bits,
            width: self.width,
        }
    }
}

impl BitXorAssign for BitVec {
    fn bitxor_assign(&mut self, rhs: BitVec) {
        assert_eq!(self.width, rhs.width, "xor requires equal widths");
        self.bits ^= rhs.bits;
    }
}

impl BitAnd for BitVec {
    type Output = BitVec;

    fn bitand(self, rhs: BitVec) -> BitVec {
        assert_eq!(self.width, rhs.width, "and requires equal widths");
        BitVec {
            bits: self.bits & rhs.bits,
            width: self.width,
        }
    }
}

impl fmt::Display for BitVec {
    /// Displays the vector most-significant bit first, e.g. `0b0110`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b")?;
        for i in (0..self.width()).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::UpperHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_unit_construction() {
        let z = BitVec::zero(8);
        assert!(z.is_zero());
        assert_eq!(z.width(), 8);
        assert_eq!(z.weight(), 0);

        let e3 = BitVec::unit(3, 8);
        assert_eq!(e3.as_u64(), 0b1000);
        assert!(e3.get(3));
        assert!(!e3.get(2));
        assert_eq!(e3.weight(), 1);
    }

    #[test]
    fn from_u64_masks_high_bits() {
        let v = BitVec::from_u64(0xFFFF, 8);
        assert_eq!(v.as_u64(), 0xFF);
        assert_eq!(v.width(), 8);
    }

    #[test]
    fn try_from_rejects_bad_widths() {
        assert_eq!(
            BitVec::try_from_u64(1, 0).unwrap_err(),
            Gf2Error::UnsupportedWidth(0)
        );
        assert_eq!(
            BitVec::try_from_u64(1, 65).unwrap_err(),
            Gf2Error::UnsupportedWidth(65)
        );
        assert!(BitVec::try_from_u64(1, 64).is_ok());
    }

    #[test]
    fn with_bits_sets_exactly_those_bits() {
        let v = BitVec::with_bits(&[0, 2, 5], 8);
        assert_eq!(v.as_u64(), 0b100101);
        assert_eq!(v.set_bits().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn xor_and_dot() {
        let a = BitVec::from_u64(0b1100, 4);
        let b = BitVec::from_u64(0b1010, 4);
        assert_eq!((a ^ b).as_u64(), 0b0110);
        // a & b = 0b1000 -> odd parity
        assert!(a.dot(b));
        // self dot self = parity of weight
        assert!(!a.dot(a));
        let mut c = a;
        c ^= b;
        assert_eq!(c.as_u64(), 0b0110);
        assert_eq!((a & b).as_u64(), 0b1000);
    }

    #[test]
    fn leading_and_trailing_bits() {
        let v = BitVec::from_u64(0b0101_1000, 8);
        assert_eq!(v.leading_bit(), Some(6));
        assert_eq!(v.trailing_bit(), Some(3));
        assert_eq!(BitVec::zero(8).leading_bit(), None);
        assert_eq!(BitVec::zero(8).trailing_bit(), None);
    }

    #[test]
    fn resize_truncates_low_bits() {
        let v = BitVec::from_u64(0xABCD, 16);
        assert_eq!(v.resized(8).as_u64(), 0xCD);
        assert_eq!(v.resized(20).as_u64(), 0xABCD);
        assert_eq!(v.resized(20).width(), 20);
    }

    #[test]
    fn flipped_toggles_one_bit() {
        let v = BitVec::from_u64(0b0110, 4);
        assert_eq!(v.flipped(0).as_u64(), 0b0111);
        assert_eq!(v.flipped(2).as_u64(), 0b0010);
        assert_eq!(v.flipped(2).flipped(2), v);
    }

    #[test]
    fn display_is_msb_first() {
        let v = BitVec::from_u64(0b0110, 4);
        assert_eq!(v.to_string(), "0b0110");
        assert_eq!(format!("{:x}", v), "6");
        assert_eq!(format!("{:b}", v), "110");
    }

    #[test]
    fn full_width_64_works() {
        let v = BitVec::from_u64(u64::MAX, 64);
        assert_eq!(v.weight(), 64);
        assert_eq!(v.leading_bit(), Some(63));
        assert_eq!((v ^ v).weight(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zero(4);
        let _ = v.get(4);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn xor_mismatched_widths_panics() {
        let _ = BitVec::zero(4) ^ BitVec::zero(5);
    }

    #[test]
    fn set_bits_iterator_is_exact_size() {
        let v = BitVec::from_u64(0b1011, 4);
        let it = v.set_bits();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn ordering_is_consistent_with_bits() {
        let a = BitVec::from_u64(1, 8);
        let b = BitVec::from_u64(2, 8);
        assert!(a < b);
    }
}
