//! Counting formulas for the XOR-function design space.
//!
//! Section 2 of the paper quantifies the design space: the number of `n×m`
//! full-column-rank matrices (Eq. 3) is astronomically larger than the number
//! of distinct null spaces, which is why the search operates on null spaces.
//! For `n = 16`, `m = 8` the paper quotes ≈ 3.4e38 matrices but only ≈ 6.3e19
//! null spaces; these functions reproduce those figures exactly.

/// Number of full-column-rank `n×m` matrices over GF(2) (paper Eq. 3):
///
/// `N(n, m) = Π_{i=1}^{m} (2^{n-i+1} − 1) / (2^i − 1) · ...`
///
/// The paper writes the count of *distinct hash functions* as
/// `Π_{i=1}^{m} (2^{n-i+1} − 1) / (2^i − 1)`; multiplied by the number of
/// ordered bases of an `m`-dimensional space it gives the raw matrix count.
/// This function returns the number of injective (full-column-rank) matrices,
/// i.e. the number of ways to pick `m` linearly independent columns from
/// GF(2)^n in order: `Π_{i=0}^{m-1} (2^n − 2^i)`.
///
/// Returns `f64` because the values overflow any fixed-width integer for the
/// parameters used in the paper.
///
/// # Panics
///
/// Panics if `m > n`.
#[must_use]
pub fn full_rank_matrices(n: u32, m: u32) -> f64 {
    assert!(m <= n, "m must not exceed n");
    let mut acc = 1.0f64;
    for i in 0..m {
        acc *= 2f64.powi(n as i32) - 2f64.powi(i as i32);
    }
    acc
}

/// Number of *all* `n×m` binary matrices, `2^(n·m)`, as an `f64`.
#[must_use]
pub fn all_matrices(n: u32, m: u32) -> f64 {
    2f64.powi((n * m) as i32)
}

/// Gaussian binomial coefficient `[n choose k]_2`: the number of
/// `k`-dimensional subspaces of GF(2)^n.
///
/// Computed in floating point; exact for the small parameters used in cache
/// indexing (the largest intermediate values stay well below 2^1000).
///
/// # Panics
///
/// Panics if `k > n`.
#[must_use]
pub fn gaussian_binomial(n: u32, k: u32) -> f64 {
    assert!(k <= n, "k must not exceed n");
    let mut acc = 1.0f64;
    for i in 0..k {
        let numerator = 2f64.powi((n - i) as i32) - 1.0;
        let denominator = 2f64.powi((k - i) as i32) - 1.0;
        acc *= numerator / denominator;
    }
    acc
}

/// Exact Gaussian binomial coefficient as `u128`, when it fits.
///
/// Returns `None` on overflow.
///
/// # Panics
///
/// Panics if `k > n`.
#[must_use]
pub fn gaussian_binomial_exact(n: u32, k: u32) -> Option<u128> {
    assert!(k <= n, "k must not exceed n");
    // [n k]_2 = Π_{i=0}^{k-1} (2^(n-i) - 1) / (2^(i+1) - 1), computed as an
    // exact product of integers by interleaving multiplications and exact
    // divisions (the partial products are always integers).
    let mut numerator: u128 = 1;
    let mut denominator: u128 = 1;
    for i in 0..k {
        numerator = numerator.checked_mul((1u128 << (n - i)) - 1)?;
        denominator = denominator.checked_mul((1u128 << (i + 1)) - 1)?;
        // Reduce eagerly: the running ratio after each step is an integer only
        // at the very end, so reduce by the gcd instead.
        let g = gcd(numerator, denominator);
        numerator /= g;
        denominator /= g;
    }
    if denominator == 1 {
        Some(numerator)
    } else {
        None
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Number of distinct null spaces of `n→m` hash functions: the number of
/// `(n−m)`-dimensional subspaces of GF(2)^n, `[n choose n−m]_2`.
///
/// # Panics
///
/// Panics if `m > n`.
#[must_use]
pub fn distinct_null_spaces(n: u32, m: u32) -> f64 {
    assert!(m <= n, "m must not exceed n");
    gaussian_binomial(n, n - m)
}

/// Number of distinct `n→m` hash functions counted as in paper Eq. 3:
/// surjective linear maps up to post-composition differences that do not
/// change conflict behaviour are still counted, i.e. this is the raw count
/// `Π_{i=1}^{m} (2^{n−i+1} − 1)·2^{i-1} / (2^i − 1)`-style figure the paper
/// abbreviates as “3.4e38 distinct matrices”.
///
/// Concretely this returns the number of surjective `n×m` GF(2) matrices,
/// which for `n = 16, m = 8` evaluates to ≈ 3.4e38.
///
/// # Panics
///
/// Panics if `m > n`.
#[must_use]
pub fn distinct_matrices(n: u32, m: u32) -> f64 {
    full_rank_matrices(n, m)
}

/// Number of bit-selecting `n→m` functions: `C(n, m)` (binomial coefficient),
/// the figure that makes Patel et al.'s exhaustive search feasible.
///
/// # Panics
///
/// Panics if `m > n`.
#[must_use]
pub fn bit_selecting_functions(n: u64, m: u64) -> u128 {
    assert!(m <= n, "m must not exceed n");
    let mut acc: u128 = 1;
    for i in 0..m.min(n - m) {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_design_space_figures() {
        // "There are 3.4e38 distinct matrices, hashing 16 address bits to 8
        //  set index bits but only 6.3e19 distinct null spaces."
        let matrices = distinct_matrices(16, 8);
        assert!(
            (matrices / 3.4e38) > 0.9 && (matrices / 3.4e38) < 1.1,
            "matrix count {matrices:e} should be about 3.4e38"
        );
        let spaces = distinct_null_spaces(16, 8);
        assert!(
            (spaces / 6.3e19) > 0.9 && (spaces / 6.3e19) < 1.1,
            "null-space count {spaces:e} should be about 6.3e19"
        );
    }

    #[test]
    fn gaussian_binomial_small_cases() {
        // [n 0] = [n n] = 1
        assert_eq!(gaussian_binomial(5, 0), 1.0);
        assert_eq!(gaussian_binomial(5, 5), 1.0);
        // [n 1]_2 = 2^n - 1 (number of lines)
        assert_eq!(gaussian_binomial(4, 1), 15.0);
        // [4 2]_2 = 35
        assert_eq!(gaussian_binomial(4, 2), 35.0);
        // Symmetry [n k] = [n n-k] (up to floating-point rounding)
        let (a, b) = (gaussian_binomial(10, 3), gaussian_binomial(10, 7));
        assert!((a / b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_binomial_exact_matches_float() {
        for n in 1..=16u32 {
            for k in 0..=n {
                let exact = gaussian_binomial_exact(n, k).expect("fits in u128 for n<=16");
                let float = gaussian_binomial(n, k);
                let ratio = exact as f64 / float;
                assert!(
                    (ratio - 1.0).abs() < 1e-9,
                    "[{n} {k}]_2 exact={exact} float={float}"
                );
            }
        }
    }

    #[test]
    fn exact_count_of_null_spaces_for_paper_parameters() {
        let exact = gaussian_binomial_exact(16, 8).expect("fits");
        // 6.3e19 rounded in the paper.
        let ratio = exact as f64 / 6.3e19;
        assert!(ratio > 0.95 && ratio < 1.05, "exact count {exact}");
    }

    #[test]
    fn full_rank_matrix_count_small() {
        // 2x1 full-column-rank matrices over GF(2): columns are any non-zero
        // 2-bit vector -> 3.
        assert_eq!(full_rank_matrices(2, 1), 3.0);
        // 2x2 invertible matrices: (2^2-1)(2^2-2) = 6.
        assert_eq!(full_rank_matrices(2, 2), 6.0);
        assert!(full_rank_matrices(4, 2) < all_matrices(4, 2));
    }

    #[test]
    fn bit_selecting_count_is_binomial() {
        assert_eq!(bit_selecting_functions(16, 8), 12870);
        assert_eq!(bit_selecting_functions(16, 10), 8008);
        assert_eq!(bit_selecting_functions(16, 12), 1820);
        assert_eq!(bit_selecting_functions(5, 0), 1);
        assert_eq!(bit_selecting_functions(5, 5), 1);
    }

    #[test]
    #[should_panic(expected = "m must not exceed n")]
    fn invalid_parameters_panic() {
        let _ = distinct_null_spaces(4, 5);
    }
}
