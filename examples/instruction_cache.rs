//! Application-specific indexing for an instruction cache.
//!
//! The paper's Table 2 shows that instruction caches benefit even more than
//! data caches: kernel loop bodies and the helper functions they call sit at
//! fixed distances in the binary, so the same few conflicts repeat millions of
//! times — and a reconfigurable XOR function removes them wholesale.
//!
//! This example reproduces that effect on the synthetic `jpeg dec` instruction
//! stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example instruction_cache
//! ```

use xorindex_repro::prelude::*;

fn main() {
    let workload = WorkloadSuite::by_name("jpeg dec").expect("jpeg dec is a known benchmark");
    let trace = workload.instruction_trace(Scale::Small);
    println!(
        "instruction trace: {} fetches, {} operations",
        trace.instruction_len(),
        trace.ops()
    );

    for size_kb in [1u64, 4, 16] {
        let cache = CacheConfig::paper_cache(size_kb);
        let blocks: Vec<BlockAddr> = trace
            .instruction_block_addresses(cache.block_bits())
            .collect();

        let optimizer = Optimizer::builder()
            .cache(cache)
            .hashed_bits(16)
            .function_class(FunctionClass::permutation_based(2))
            .revert_if_worse(true)
            .build();
        let outcome = optimizer.optimize(blocks.iter().copied());

        println!(
            "{:>2} KB i-cache: baseline {:>7} misses ({:>6.1} / K-uop)  ->  optimized {:>7} misses  ({:>5.1}% removed{})",
            size_kb,
            outcome.baseline_stats.misses,
            outcome.baseline_misses_per_kilo_ops(trace.ops()),
            outcome.optimized_stats.misses,
            outcome.percent_misses_removed(),
            if outcome.reverted { ", reverted" } else { "" },
        );
    }

    println!(
        "\nconflict misses are the only category an index function can remove;\n\
         compulsory and capacity misses are unchanged by construction."
    );
}
