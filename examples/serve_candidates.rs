//! Serving-layer quickstart: register two applications with an
//! `IndexService`, drive a worker pool with typed requests, and watch the
//! sharded memo absorb repeat pricing.
//!
//! The hot path is the one the paper's reconfigurable cache needs in
//! production: per-application conflict profiles frozen into shared kernels,
//! candidate null spaces priced as packed `u64` bases (no `Subspace` is ever
//! materialized per request), and a full design-space search served through
//! the same memo the candidate requests warm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_candidates
//! ```

use std::sync::Arc;

use xorindex_repro::prelude::*;
use xorindex_repro::xorindex_serve::{self, Registration, Request, Response};

fn main() {
    let cache = CacheConfig::paper_cache(1);

    // 1. Two "applications": a strided loop and a ping-pong access pattern,
    //    each profiled once for the same 1 KB cache.
    let strided = memtrace::generators::StridedGenerator::new(0x4_0000, 1024, 16, 200).generate();
    let ping_pong: Vec<BlockAddr> = (0..4000u64).map(|i| BlockAddr((i % 2) * 256)).collect();

    let service = Arc::new(xorindex_serve::IndexService::new());
    let loop_app = service
        .register(
            Registration::new(
                ConflictProfile::from_blocks(
                    strided.data_block_addresses(cache.block_bits()),
                    16,
                    cache.num_blocks() as usize,
                ),
                cache,
            )
            .with_class(FunctionClass::permutation_based(2)),
        )
        .expect("valid geometry");
    let pong_app = service
        .register(
            Registration::new(
                ConflictProfile::from_blocks(
                    ping_pong.iter().copied(),
                    16,
                    cache.num_blocks() as usize,
                ),
                cache,
            )
            .with_class(FunctionClass::xor_unlimited()),
        )
        .expect("valid geometry");
    println!("registered {} applications", service.len());

    // 2. Spin up the worker pool: 4 threads draining a bounded request queue.
    let pool = xorindex_serve::WorkerPool::new(Arc::clone(&service), 4, 32);

    // 3. Price candidates for both applications concurrently. Requests carry
    //    packed bases — here, the null spaces of conventional indexing with
    //    the low set-index bits swapped for various high bits.
    let mut pending = Vec::new();
    for app in [loop_app, pong_app] {
        for high_bit in 8..16 {
            let excluded = (8..16).map(|b| if b == high_bit { 0 } else { b });
            let basis = gf2::PackedBasis::standard_span(16, excluded);
            pending.push((
                app,
                high_bit,
                pool.submit(Request::PriceCandidate { app, basis }),
            ));
        }
    }
    for (app, high_bit, submitted) in pending {
        match submitted.expect("pool alive").wait() {
            Response::Price(cost) => {
                println!("{app}: swap bit {high_bit:2} for bit 0 -> {cost:5} estimated misses");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // 4. Run a full search for each application through the same pool; the
    //    searches reuse whatever the candidate requests already priced.
    for app in [loop_app, pong_app] {
        match pool.call(Request::RunSearch {
            app,
            algorithm: SearchAlgorithm::HillClimb,
        }) {
            Response::Search(outcome) => println!(
                "{app}: search removed {:.1}% of estimated conflict misses ({} -> {})",
                outcome.estimated_percent_removed(),
                outcome.baseline_estimate,
                outcome.estimated_misses
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    // 5. The memo stats show the sharing: hits are requests answered without
    //    re-running Eq. 4.
    for app in [loop_app, pong_app] {
        match pool.call(Request::Stats { app }) {
            Response::Stats(stats) => println!(
                "{app}: {} distinct conflict vectors, memo {} entries over {} shards, {} hits / {} misses",
                stats.distinct_vectors,
                stats.memo.entries,
                stats.memo.shards,
                stats.memo.hits,
                stats.memo.misses
            ),
            other => panic!("unexpected {other:?}"),
        }
    }
}
