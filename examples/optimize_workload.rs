//! Optimize the data-cache index function for one of the paper's benchmarks.
//!
//! Picks a workload by name (default: `fft`, the classic conflict-miss
//! generator), runs the full pipeline for every function class the paper
//! compares, and prints a Table-2-style report for the 1 KB and 4 KB caches.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example optimize_workload -- [benchmark-name]
//! cargo run --release --example optimize_workload -- "jpeg dec"
//! ```

use xorindex_repro::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let Some(workload) = WorkloadSuite::by_name(&name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for w in WorkloadSuite::all() {
            eprintln!("  {:<12} ({})", w.name(), w.suite());
        }
        std::process::exit(1);
    };

    println!("benchmark: {} ({})", workload.name(), workload.suite());
    let trace = workload.data_trace(Scale::Small);
    println!(
        "data trace: {} references, {} operations",
        trace.data_len(),
        trace.ops()
    );

    let classes = [
        FunctionClass::bit_selecting(),
        FunctionClass::permutation_based(2),
        FunctionClass::permutation_based(4),
        FunctionClass::permutation_based_unlimited(),
        FunctionClass::xor_unlimited(),
    ];

    for size_kb in [1u64, 4] {
        let cache = CacheConfig::paper_cache(size_kb);
        let blocks: Vec<BlockAddr> = trace.data_block_addresses(cache.block_bits()).collect();
        let report = EvaluationReport::evaluate(workload.name(), cache, 16, &classes, &blocks);
        println!();
        println!("{report}");
        println!(
            "baseline misses/K-uop: {:.1}",
            report.baseline().misses_per_kilo_ops(trace.ops())
        );
    }
}
