//! A standalone TCP index server with snapshot/restore across restarts.
//!
//! First run: registers two demo applications (a strided loop and a
//! ping-pong pattern), serves the binary wire protocol on loopback for a
//! few seconds, then snapshots the registry to a file in the system temp
//! directory. Second run: restores from that snapshot — no re-profiling,
//! no kernel re-freezing — and serves the same applications warm, with the
//! same `AppId`s.
//!
//! Run with (optionally `<addr>` and `<seconds>` as arguments):
//!
//! ```text
//! cargo run --release --example tcp_server
//! # ...and while it serves, from another terminal:
//! cargo run --release --example tcp_client
//! ```

use std::sync::Arc;

use xorindex_repro::prelude::*;
use xorindex_repro::xorindex_serve::{self, Registration, ServerConfig, TcpServer};

/// Registers the demo applications: a strided loop and a ping-pong access
/// pattern, both profiled at 16 hashed bits for the paper's 1 KB cache.
fn fresh_service() -> xorindex_serve::IndexService {
    let cache = CacheConfig::paper_cache(1);
    let service = xorindex_serve::IndexService::new();

    let strided = memtrace::generators::StridedGenerator::new(0x4_0000, 1024, 16, 200).generate();
    let loop_app = service
        .register(Registration::new(
            ConflictProfile::from_blocks(
                strided.data_block_addresses(cache.block_bits()),
                16,
                cache.num_blocks() as usize,
            ),
            cache,
        ))
        .expect("valid geometry");

    let ping_pong = (0..4000u64).map(|i| BlockAddr((i % 2) * 256));
    let pong_app = service
        .register(
            Registration::new(
                ConflictProfile::from_blocks(ping_pong, 16, cache.num_blocks() as usize),
                cache,
            )
            .with_class(FunctionClass::xor_unlimited()),
        )
        .expect("valid geometry");

    println!("registered {loop_app} (strided loop) and {pong_app} (ping-pong)");
    service
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7401".to_string());
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15);
    let snapshot_path = std::env::temp_dir().join("xorindex_demo_snapshot.bin");

    // Restart path: rehydrate the registry from the previous run's snapshot.
    let service = if snapshot_path.exists() {
        match xorindex_serve::IndexService::restore_from(&snapshot_path) {
            Ok(restored) => {
                println!(
                    "restored {} applications from {} — serving warm, same AppIds",
                    restored.len(),
                    snapshot_path.display()
                );
                Arc::new(restored)
            }
            Err(e) => {
                println!(
                    "snapshot at {} unusable ({e}); registering fresh",
                    snapshot_path.display()
                );
                Arc::new(fresh_service())
            }
        }
    } else {
        Arc::new(fresh_service())
    };

    let server = TcpServer::bind(addr.as_str(), Arc::clone(&service), ServerConfig::default())
        .expect("bind the requested address");
    println!(
        "serving the binary wire protocol on {} for {seconds}s — \
         run `cargo run --release --example tcp_client` now",
        server.local_addr()
    );
    std::thread::sleep(std::time::Duration::from_secs(seconds));

    // Report what the wire saw, then persist the registry for the next run.
    let wire = server.wire_stats();
    println!(
        "served {} connections: {} frames in / {} frames out, \
         {} bytes in / {} bytes out, max pipeline depth {}, {} decode errors",
        wire.connections,
        wire.frames_in,
        wire.frames_out,
        wire.bytes_in,
        wire.bytes_out,
        wire.max_pipeline_depth,
        wire.decode_errors
    );
    service
        .snapshot_to(&snapshot_path)
        .expect("write the snapshot");
    println!(
        "snapshot written to {} — restart this example to restore it",
        snapshot_path.display()
    );
}
