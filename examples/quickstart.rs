//! Quickstart: eliminate the conflict misses of a power-of-two strided loop.
//!
//! A 1 KB direct-mapped cache with 4-byte blocks has 256 sets. A loop that
//! walks an array with a 1 KB stride maps every element to set 0, so it
//! misses on every access. This example profiles that loop, constructs an
//! application-specific 2-input permutation-based XOR index function and shows
//! the miss count collapsing.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xorindex_repro::prelude::*;

fn main() {
    // 1. Build the workload: 16 hot addresses 1 KB apart, revisited 200 times.
    let trace = memtrace::generators::StridedGenerator::new(0x4_0000, 1024, 16, 200).generate();
    println!(
        "trace: {} references over {} distinct addresses",
        trace.len(),
        16
    );

    // 2. Describe the cache under study: the paper's 1 KB direct-mapped cache.
    let cache = CacheConfig::paper_cache(1);
    println!("cache: {cache}");

    // 3. Profile + search + verify in one call.
    let optimizer = Optimizer::builder()
        .cache(cache)
        .hashed_bits(16)
        .function_class(FunctionClass::permutation_based(2))
        .build();
    let outcome = optimizer.optimize(trace.data_block_addresses(cache.block_bits()));

    // 4. Report what happened.
    println!("\nconventional indexing : {}", outcome.baseline_stats);
    println!("optimized XOR indexing: {}", outcome.optimized_stats);
    println!(
        "\nmisses removed: {:.1}%  (estimated by the profile: {:.1}%)",
        outcome.percent_misses_removed(),
        outcome.search.estimated_percent_removed()
    );
    println!("\nselected hash function (one row per hashed address bit):");
    println!("{}", outcome.function);
    println!(
        "\nthe function is permutation-based: {}, widest XOR gate: {} inputs",
        outcome.function.is_permutation_based(),
        outcome.function.max_xor_inputs()
    );
}
