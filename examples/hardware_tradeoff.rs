//! Miss reduction vs reconfigurable-hardware cost.
//!
//! Section 5 of the paper argues that a reconfigurable *permutation-based*
//! 2-input XOR function needs fewer switches and less wiring than even a
//! reconfigurable bit-selecting function, while Section 6 shows it removes
//! more misses. This example puts the two halves side by side for one
//! workload: for each indexing scheme it prints the Table 1 hardware cost and
//! the miss reduction achieved on the `susan` data trace.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hardware_tradeoff
//! ```

use xorindex::hardware::{self, IndexingScheme};
use xorindex_repro::prelude::*;

fn main() {
    let workload = WorkloadSuite::by_name("susan").expect("susan is a known benchmark");
    let trace = workload.data_trace(Scale::Small);
    let cache = CacheConfig::paper_cache(4);
    let blocks: Vec<BlockAddr> = trace.data_block_addresses(cache.block_bits()).collect();
    let hashed_bits = 16;
    let m = cache.set_bits();

    // The function classes and the hardware scheme that would implement each.
    let rows: [(FunctionClass, IndexingScheme); 3] = [
        (
            FunctionClass::bit_selecting(),
            IndexingScheme::OptimizedBitSelect,
        ),
        (FunctionClass::xor(2), IndexingScheme::GeneralXor2),
        (
            FunctionClass::permutation_based(2),
            IndexingScheme::PermutationBased2,
        ),
    ];

    println!(
        "workload: {} | cache: {} | n = {hashed_bits}, m = {m}\n",
        workload.name(),
        cache
    );
    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>12}",
        "reconfigurable scheme", "switches", "xor gates", "wire-cross", "% removed"
    );

    for (class, scheme) in rows {
        let optimizer = Optimizer::builder()
            .cache(cache)
            .hashed_bits(hashed_bits)
            .function_class(class)
            .revert_if_worse(true)
            .build();
        let outcome = optimizer.optimize(blocks.iter().copied());
        let cost = hardware::cost(scheme, hashed_bits, m);
        println!(
            "{:<28} {:>9} {:>9} {:>10} {:>11.1}%",
            scheme.label(),
            cost.switches,
            cost.xor_gates,
            cost.wire_crossings(),
            outcome.percent_misses_removed()
        );
    }

    println!(
        "\nthe permutation-based scheme is both the cheapest to make reconfigurable\n\
         and (together with general XOR) the most effective at removing misses —\n\
         the paper's central trade-off."
    );
}
