//! A guided tour of the XOR-indexing design space.
//!
//! This example walks through the concepts the paper builds on, using the
//! library's primitives directly rather than the end-to-end optimizer:
//!
//! 1. hash functions as GF(2) matrices and their null spaces (Eq. 1–2);
//! 2. why the search works on null spaces (Eq. 3: the design space collapses);
//! 3. the profiling histogram (Fig. 1) and the Eq. 4 miss estimate;
//! 4. permutation-based functions and their unique representative.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space_tour
//! ```

use xorindex_repro::prelude::*;

fn main() {
    // --- 1. Hash functions and conflicts -----------------------------------
    let n = 16;
    let m = 8;
    let conventional = HashFunction::conventional(n, m).expect("valid geometry");
    let xor = HashFunction::new(BitMatrix::from_fn(n, m, |r, c| r == c || r == c + m))
        .expect("full rank");

    let a = 0x0100u64; // two block addresses 256 blocks apart
    let b = 0x0200u64;
    println!(
        "conventional: set({a:#06x}) = {:#x}, set({b:#06x}) = {:#x}",
        conventional.set_index_of(a),
        conventional.set_index_of(b)
    );
    println!(
        "xor function: set({a:#06x}) = {:#x}, set({b:#06x}) = {:#x}",
        xor.set_index_of(a),
        xor.set_index_of(b)
    );

    // Conflicts are characterized by the null space (paper Eq. 2).
    let difference = BitVec::from_u64(a ^ b, n);
    println!(
        "a ^ b in N(conventional)? {}   in N(xor)? {}",
        conventional.null_space().contains(difference),
        xor.null_space().contains(difference)
    );

    // --- 2. The design space ------------------------------------------------
    println!();
    println!(
        "distinct {n}x{m} matrices : {:.2e}",
        gf2::count::distinct_matrices(n as u32, m as u32)
    );
    println!(
        "distinct null spaces    : {:.2e}",
        gf2::count::distinct_null_spaces(n as u32, m as u32)
    );
    println!(
        "bit-selecting functions : {}",
        gf2::count::bit_selecting_functions(n as u64, m as u64)
    );

    // --- 3. Profiling and estimation ----------------------------------------
    println!();
    let blocks: Vec<BlockAddr> = (0..4000u64).map(|i| BlockAddr((i % 4) * 0x100)).collect();
    let profile = ConflictProfile::from_blocks(blocks.iter().copied(), n, 256);
    println!(
        "profile: {} references, {} distinct conflict vectors, total weight {}",
        profile.summary().references,
        profile.distinct_vectors(),
        profile.total_weight()
    );
    for (vector, weight) in profile.heaviest(3) {
        println!("  heavy conflict vector {vector}  seen {weight} times");
    }
    let estimator = MissEstimator::new(&profile);
    println!(
        "estimated conflict misses: conventional = {}, xor = {}",
        estimator.estimate(&conventional).expect("same geometry"),
        estimator.estimate(&xor).expect("same geometry"),
    );

    // --- 4. Permutation-based functions -------------------------------------
    println!();
    let ns = xor.null_space();
    println!(
        "N(xor) admits a permutation-based representative: {}",
        ns.admits_permutation_based_function(m)
    );
    let rebuilt = HashFunction::from_null_space(&ns, FunctionClass::permutation_based(2))
        .expect("Eq. 5 holds for this null space");
    println!(
        "unique permutation-based representative equals the original: {}",
        rebuilt == xor
    );
    println!(
        "conventional tag bits remain correct: {}",
        rebuilt.conventional_tag_is_correct()
    );
}
