//! A pipelined TCP client for the binary wire protocol.
//!
//! Pointed at a running `tcp_server` example (the default address matches
//! its default), it discovers the first application's geometry through a
//! `Stats` request, prices a batch of candidate null spaces at pipeline
//! depths 1 and 8, and prints the round-trip contrast plus the server's
//! wire counters.
//!
//! With no server running it demonstrates the whole lifecycle in-process
//! instead: register → price over loopback → snapshot → restart the server
//! → price warm, asserting the restarted answers are bit-identical.
//!
//! Run with (optionally `<addr>` as an argument):
//!
//! ```text
//! cargo run --release --example tcp_client
//! ```

use std::sync::Arc;
use std::time::Instant;

use xorindex_repro::prelude::*;
use xorindex_repro::xorindex_serve::{self, AppId, Client, Registration, ServerConfig, TcpServer};

/// Candidate null spaces for an application serving `hashed_bits` with
/// `set_bits` set-index bits: conventional indexing with one low set bit
/// swapped for each higher address bit in turn.
fn candidates(hashed_bits: usize, set_bits: usize) -> Vec<gf2::PackedBasis> {
    (set_bits..hashed_bits)
        .map(|high_bit| {
            let excluded = (set_bits..hashed_bits).map(|b| if b == high_bit { 0 } else { b });
            gf2::PackedBasis::standard_span(hashed_bits, excluded)
        })
        .collect()
}

/// Prices candidates for the server's first application at depths 1 and 8.
fn drive(client: &mut Client) {
    let app = AppId::from_raw(0);
    let stats = match client.call(&Request::Stats { app }).expect("stats call") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "{app}: {} hashed bits, {} set bits, {} distinct conflict vectors",
        stats.hashed_bits, stats.set_bits, stats.distinct_vectors
    );

    let requests: Vec<Request> = candidates(stats.hashed_bits, stats.set_bits)
        .into_iter()
        .map(|basis| Request::PriceCandidate { app, basis })
        .collect();

    let start = Instant::now();
    let sequential = client.call_pipelined(&requests, 1).expect("depth-1 run");
    let depth1 = start.elapsed();
    let start = Instant::now();
    let pipelined = client.call_pipelined(&requests, 8).expect("depth-8 run");
    let depth8 = start.elapsed();
    assert_eq!(sequential, pipelined, "depth must not change answers");

    for (request, response) in requests.iter().zip(&pipelined) {
        let Request::PriceCandidate { basis, .. } = request else {
            unreachable!()
        };
        let Response::Price(cost) = response else {
            panic!("unexpected {response:?}")
        };
        println!(
            "  dim-{} candidate -> {cost:6} estimated misses",
            basis.dim()
        );
    }
    println!(
        "{} requests: depth 1 in {depth1:?}, depth 8 in {depth8:?}",
        requests.len()
    );

    let wire = client.server_stats().expect("server stats");
    println!(
        "server wire counters: {} frames in / {} out, max pipeline depth {}",
        wire.frames_in, wire.frames_out, wire.max_pipeline_depth
    );
}

/// The full lifecycle in one process: register → price over loopback →
/// snapshot → restart the server → price warm and bit-identically.
fn lifecycle_demo() {
    let cache = CacheConfig::paper_cache(1);
    let ping_pong = (0..4000u64).map(|i| BlockAddr((i % 2) * 256));
    let profile = ConflictProfile::from_blocks(ping_pong, 16, cache.num_blocks() as usize);

    let service = Arc::new(xorindex_serve::IndexService::new());
    let app = service
        .register(Registration::new(profile, cache))
        .expect("valid geometry");
    let requests: Vec<Request> = candidates(16, cache.set_bits())
        .into_iter()
        .map(|basis| Request::PriceCandidate { app, basis })
        .collect();
    let snapshot_path =
        std::env::temp_dir().join(format!("xorindex_client_demo_{}.bin", std::process::id()));

    // Generation one: price everything, snapshot, shut the server down.
    let first = {
        let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
            .expect("ephemeral loopback bind");
        let mut client = Client::connect(server.local_addr()).expect("loopback connect");
        let responses = client.call_pipelined(&requests, 8).expect("pipelined run");
        server
            .service()
            .snapshot_to(&snapshot_path)
            .expect("write the snapshot");
        println!(
            "generation 1: priced {} candidates, snapshot at {}",
            responses.len(),
            snapshot_path.display()
        );
        responses
    };

    // Generation two: restore from disk — no re-profiling — and re-price.
    let restored = Arc::new(
        xorindex_serve::IndexService::restore_from(&snapshot_path).expect("readable snapshot"),
    );
    std::fs::remove_file(&snapshot_path).expect("remove the demo snapshot");
    let server = TcpServer::bind("127.0.0.1:0", restored, ServerConfig::default())
        .expect("ephemeral loopback bind");
    let mut client = Client::connect(server.local_addr()).expect("loopback connect");
    let second = client.call_pipelined(&requests, 8).expect("pipelined run");
    assert_eq!(first, second, "restored answers must be bit-identical");
    println!(
        "generation 2: restored server priced all {} candidates bit-identically",
        second.len()
    );
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7401".to_string());
    match Client::connect(addr.as_str()) {
        Ok(mut client) => {
            println!("connected to {addr}");
            drive(&mut client);
        }
        Err(_) => {
            println!("no server at {addr}; running the snapshot lifecycle in-process instead");
            lifecycle_demo();
        }
    }
}
