//! A pipelined TCP client for the binary wire protocol.
//!
//! Pointed at a running `tcp_server` example (the default address matches
//! its default), it discovers the first application's geometry through a
//! `Stats` request, prices a batch of candidate null spaces at pipeline
//! depths 1 and 8, and prints the round-trip contrast plus the server's
//! wire counters.
//!
//! With no server running it demonstrates the whole lifecycle in-process
//! instead: register → price over loopback → snapshot → restart the server
//! → price warm, asserting the restarted answers are bit-identical.
//!
//! With `--verify` it runs the optimize→verify loop over the wire instead:
//! register an application *with a retained trace*, then drive the
//! `SimulateFunction` and `OptimizeVerified` requests through a loopback
//! TCP server and print the estimator audit.
//!
//! Run with (optionally `<addr>` as an argument):
//!
//! ```text
//! cargo run --release --example tcp_client
//! cargo run --release --example tcp_client -- --verify
//! ```

use std::sync::Arc;
use std::time::Instant;

use xorindex_repro::prelude::*;
use xorindex_repro::xorindex_serve::{self, AppId, Client, Registration, ServerConfig, TcpServer};

/// Candidate null spaces for an application serving `hashed_bits` with
/// `set_bits` set-index bits: conventional indexing with one low set bit
/// swapped for each higher address bit in turn.
fn candidates(hashed_bits: usize, set_bits: usize) -> Vec<gf2::PackedBasis> {
    (set_bits..hashed_bits)
        .map(|high_bit| {
            let excluded = (set_bits..hashed_bits).map(|b| if b == high_bit { 0 } else { b });
            gf2::PackedBasis::standard_span(hashed_bits, excluded)
        })
        .collect()
}

/// Prices candidates for the server's first application at depths 1 and 8.
fn drive(client: &mut Client) {
    let app = AppId::from_raw(0);
    let stats = match client.call(&Request::Stats { app }).expect("stats call") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "{app}: {} hashed bits, {} set bits, {} distinct conflict vectors",
        stats.hashed_bits, stats.set_bits, stats.distinct_vectors
    );

    let requests: Vec<Request> = candidates(stats.hashed_bits, stats.set_bits)
        .into_iter()
        .map(|basis| Request::PriceCandidate { app, basis })
        .collect();

    let start = Instant::now();
    let sequential = client.call_pipelined(&requests, 1).expect("depth-1 run");
    let depth1 = start.elapsed();
    let start = Instant::now();
    let pipelined = client.call_pipelined(&requests, 8).expect("depth-8 run");
    let depth8 = start.elapsed();
    assert_eq!(sequential, pipelined, "depth must not change answers");

    for (request, response) in requests.iter().zip(&pipelined) {
        let Request::PriceCandidate { basis, .. } = request else {
            unreachable!()
        };
        let Response::Price(cost) = response else {
            panic!("unexpected {response:?}")
        };
        println!(
            "  dim-{} candidate -> {cost:6} estimated misses",
            basis.dim()
        );
    }
    println!(
        "{} requests: depth 1 in {depth1:?}, depth 8 in {depth8:?}",
        requests.len()
    );

    let wire = client.server_stats().expect("server stats");
    println!(
        "server wire counters: {} frames in / {} out, max pipeline depth {}",
        wire.frames_in, wire.frames_out, wire.max_pipeline_depth
    );
}

/// The full lifecycle in one process: register → price over loopback →
/// snapshot → restart the server → price warm and bit-identically.
fn lifecycle_demo() {
    let cache = CacheConfig::paper_cache(1);
    let ping_pong = (0..4000u64).map(|i| BlockAddr((i % 2) * 256));
    let profile = ConflictProfile::from_blocks(ping_pong, 16, cache.num_blocks() as usize);

    let service = Arc::new(xorindex_serve::IndexService::new());
    let app = service
        .register(Registration::new(profile, cache))
        .expect("valid geometry");
    let requests: Vec<Request> = candidates(16, cache.set_bits())
        .into_iter()
        .map(|basis| Request::PriceCandidate { app, basis })
        .collect();
    let snapshot_path =
        std::env::temp_dir().join(format!("xorindex_client_demo_{}.bin", std::process::id()));

    // Generation one: price everything, snapshot, shut the server down.
    let first = {
        let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
            .expect("ephemeral loopback bind");
        let mut client = Client::connect(server.local_addr()).expect("loopback connect");
        let responses = client.call_pipelined(&requests, 8).expect("pipelined run");
        server
            .service()
            .snapshot_to(&snapshot_path)
            .expect("write the snapshot");
        println!(
            "generation 1: priced {} candidates, snapshot at {}",
            responses.len(),
            snapshot_path.display()
        );
        responses
    };

    // Generation two: restore from disk — no re-profiling — and re-price.
    let restored = Arc::new(
        xorindex_serve::IndexService::restore_from(&snapshot_path).expect("readable snapshot"),
    );
    std::fs::remove_file(&snapshot_path).expect("remove the demo snapshot");
    let server = TcpServer::bind("127.0.0.1:0", restored, ServerConfig::default())
        .expect("ephemeral loopback bind");
    let mut client = Client::connect(server.local_addr()).expect("loopback connect");
    let second = client.call_pipelined(&requests, 8).expect("pipelined run");
    assert_eq!(first, second, "restored answers must be bit-identical");
    println!(
        "generation 2: restored server priced all {} candidates bit-identically",
        second.len()
    );
}

/// The optimize→verify loop over the wire: a server whose application
/// retains its trace answers `SimulateFunction` and `OptimizeVerified`
/// requests with measured (not estimated) miss counts.
fn verify_demo() {
    let cache = CacheConfig::paper_cache(1);
    let hashed_bits = 14;
    // A strided sweep plus a ping-pong hot pair: enough conflict structure
    // for the search to fix, small enough to replay instantly.
    let blocks: Vec<BlockAddr> = (0..6000u64)
        .map(|i| {
            if i % 3 == 0 {
                BlockAddr((i % 2) * 256)
            } else {
                BlockAddr((i * 17) % 1024)
            }
        })
        .collect();
    let profile = ConflictProfile::from_blocks(
        blocks.iter().copied(),
        hashed_bits,
        cache.num_blocks() as usize,
    );

    let service = Arc::new(xorindex_serve::IndexService::new());
    let app = service
        .register(Registration::new(profile, cache).with_trace(blocks))
        .expect("valid geometry");
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("ephemeral loopback bind");
    let mut client = Client::connect(server.local_addr()).expect("loopback connect");

    // 1. Simulate the conventional function: the measured baseline.
    let conventional =
        HashFunction::conventional(hashed_bits, cache.set_bits()).expect("valid geometry");
    let baseline = match client
        .call(&Request::SimulateFunction {
            app,
            function: conventional,
        })
        .expect("simulate call")
    {
        Response::Simulated(sim) => sim,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "conventional indexing: {} accesses, {} misses ({} conflict)",
        baseline.stats.accesses, baseline.stats.misses, baseline.stats.conflict_misses
    );
    if let Some((set, count)) = baseline.hottest_set() {
        println!("  hottest set {set}: {count} conflict misses");
    }

    // 2. Optimize, then verify the top 4 candidates by replaying the trace.
    let verified = match client
        .call(&Request::OptimizeVerified {
            app,
            algorithm: SearchAlgorithm::HillClimb,
            top_k: 4,
        })
        .expect("optimize-verified call")
    {
        Response::Verified(outcome) => outcome,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "verified {} candidates; winner is #{} with {} simulated misses \
         ({:.1}% removed vs conventional)",
        verified.candidates.len(),
        verified.winner,
        verified.winner().sim.misses(),
        verified.simulated_percent_removed(),
    );
    println!(
        "estimator audit: rank agreement {:.2}, mean |error| {:.1}, overruled: {}",
        verified.audit.rank_agreement(),
        verified.audit.mean_abs_error(),
        if verified.estimate_overruled() {
            "yes"
        } else {
            "no"
        }
    );
    assert!(
        verified.winner().sim.misses() <= baseline.stats.misses,
        "the verified winner is picked by measured misses"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--verify") {
        println!("running the optimize->verify loop over loopback TCP");
        verify_demo();
        return;
    }
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7401".to_string());
    match Client::connect(addr.as_str()) {
        Ok(mut client) => {
            println!("connected to {addr}");
            drive(&mut client);
        }
        Err(_) => {
            println!("no server at {addr}; running the snapshot lifecycle in-process instead");
            lifecycle_demo();
        }
    }
}
