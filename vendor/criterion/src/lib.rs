//! Offline stub of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. API-compatible with the subset this workspace uses:
//! `criterion_group!`/`criterion_main!`, [`Criterion`], benchmark groups with
//! `bench_function`/`bench_with_input`, and [`Bencher::iter`].
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! measures wall-clock time over a bounded number of iterations and prints
//! one `bench: <group>/<id> ... <mean time>` line per benchmark.
//!
//! Two environment variables mirror upstream criterion conveniences for CI:
//!
//! * `CRITERION_QUICK=1` — caps warm-up at 20 ms and measurement at 100 ms
//!   per benchmark (upstream's `--quick`), for smoke runs;
//! * `CRITERION_JSON=<path>` — appends one JSON object per benchmark
//!   (`{"id", "mean_ns", "iterations"}`, newline-delimited) to `<path>`, so
//!   CI can archive machine-readable timings.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the measurement phase.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the time budget for the warm-up phase.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let config = self.clone();
        run_benchmark(&config, &id, f);
    }
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    fn config(&self) -> Criterion {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            config.measurement_time = d;
        }
        config
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&self.config(), &label, f);
        self
    }

    /// Runs one benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&self.config(), &label, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op in the stub; present for API compatibility.)
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Escapes a benchmark id for embedding in a JSON string literal.
fn escape_json(label: &str) -> String {
    label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect()
}

/// `true` when `CRITERION_QUICK` requests capped smoke-run budgets.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Appends one newline-delimited JSON record to the `CRITERION_JSON` file, if
/// configured. Failures to write are reported but never fail the benchmark.
fn append_json_record(label: &str, mean: Duration, iterations: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let record = format!(
        "{{\"id\":\"{}\",\"mean_ns\":{},\"iterations\":{iterations}}}\n",
        escape_json(label),
        mean.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(record.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion stub: cannot append to {path}: {e}");
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut f: F) {
    let mut config = config.clone();
    if quick_mode() {
        config.warm_up_time = config.warm_up_time.min(Duration::from_millis(20));
        config.measurement_time = config.measurement_time.min(Duration::from_millis(100));
    }
    let config = &config;
    // Warm-up: single iterations until the warm-up budget is spent; this also
    // calibrates how many iterations fit into the measurement budget.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
    let budget_iters = if per_iter.is_zero() {
        config.sample_size as u64
    } else {
        (config.measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64
    };
    let iterations = budget_iters.clamp(1, config.sample_size as u64);

    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / iterations.max(1) as u32;
    println!("bench: {label:<60} {mean:>12.3?}/iter ({iterations} iters)");
    append_json_record(label, mean, iterations);
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        trivial_bench(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        targets = trivial_bench
    }

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }

    #[test]
    fn json_escaping_handles_quotes_and_backslashes() {
        assert_eq!(escape_json("group/id"), "group/id");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        // Without CRITERION_JSON in the environment the writer is a no-op.
        append_json_record("group/id", Duration::from_nanos(1234), 7);
    }
}
