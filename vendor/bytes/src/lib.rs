//! Offline stub of the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the cursor-style big-endian accessors this workspace's binary trace codec
//! uses. `Bytes` is a cheaply cloneable shared buffer backed by an
//! `Arc<[u8]>`; reads advance an internal cursor like the upstream crate.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates a buffer borrowing a `'static` slice (copied in this stub).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice sharing the same backing storage. The range is
    /// interpreted relative to the current remaining bytes.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer used to build [`Bytes`] values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style big-endian reads, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Big-endian appends, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_cursor() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64(42);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.copy_to_bytes(2).to_vec(), b"hi");
        assert!(b.is_empty());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let tail = b.slice(0..b.len() - 1);
        assert_eq!(tail.len(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }
}
