//! Offline stub of the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the cursor-style big-endian accessors this workspace's binary trace codec
//! and wire protocol use. `Bytes` is a cheaply cloneable shared buffer backed
//! by an `Arc<[u8]>`; reads advance an internal cursor like the upstream
//! crate. As upstream, [`Buf`] is also implemented for `&[u8]` (the cursor is
//! the slice itself) and [`BufMut`] for `Vec<u8>`, and the non-panicking
//! `try_get_*` accessors return [`TryGetError`] on underflow instead of
//! panicking — the surface a network decoder needs to reject malformed input
//! as data, not as a crash.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates a buffer borrowing a `'static` slice (copied in this stub).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice sharing the same backing storage. The range is
    /// interpreted relative to the current remaining bytes.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer used to build [`Bytes`] values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Error returned by the non-panicking `try_get_*` reads: the buffer held
/// fewer bytes than the read needed. Mirrors upstream's `TryGetError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryGetError {
    /// Bytes the read required.
    pub requested: usize,
    /// Bytes that were actually available.
    pub available: usize,
}

impl std::fmt::Display for TryGetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tried to read {} bytes but only {} were available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for TryGetError {}

/// Cursor-style big-endian reads, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the remaining bytes without advancing the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor past `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads the next `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "buffer underflow");
        let out = Bytes::from(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.try_get_u8().expect("buffer underflow")
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        self.try_get_u16().expect("buffer underflow")
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        self.try_get_u32().expect("buffer underflow")
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        self.try_get_u64().expect("buffer underflow")
    }

    /// Reads one byte, or reports how short the buffer is.
    ///
    /// # Errors
    ///
    /// [`TryGetError`] when the buffer is empty; the cursor does not move.
    fn try_get_u8(&mut self) -> Result<u8, TryGetError> {
        let b = try_bytes::<1>(self)?;
        Ok(b[0])
    }

    /// Reads a big-endian `u16`, or reports how short the buffer is.
    ///
    /// # Errors
    ///
    /// [`TryGetError`] on underflow; the cursor does not move.
    fn try_get_u16(&mut self) -> Result<u16, TryGetError> {
        Ok(u16::from_be_bytes(try_bytes::<2>(self)?))
    }

    /// Reads a big-endian `u32`, or reports how short the buffer is.
    ///
    /// # Errors
    ///
    /// [`TryGetError`] on underflow; the cursor does not move.
    fn try_get_u32(&mut self) -> Result<u32, TryGetError> {
        Ok(u32::from_be_bytes(try_bytes::<4>(self)?))
    }

    /// Reads a big-endian `u64`, or reports how short the buffer is.
    ///
    /// # Errors
    ///
    /// [`TryGetError`] on underflow; the cursor does not move.
    fn try_get_u64(&mut self) -> Result<u64, TryGetError> {
        Ok(u64::from_be_bytes(try_bytes::<8>(self)?))
    }
}

/// Reads `N` bytes off the front of `buf`, leaving the cursor untouched when
/// fewer remain.
fn try_bytes<const N: usize>(buf: &mut (impl Buf + ?Sized)) -> Result<[u8; N], TryGetError> {
    if buf.remaining() < N {
        return Err(TryGetError {
            requested: N,
            available: buf.remaining(),
        });
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&buf.chunk()[..N]);
    buf.advance(N);
    Ok(out)
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        let _ = self.take(n);
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }
}

/// The upstream crate's zero-copy decode surface: a plain byte slice is a
/// cursor over itself, advancing by re-slicing (no copy, no allocation).
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Big-endian appends, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// The upstream crate's encode surface for plain vectors: appends go straight
/// into the `Vec`'s storage.
impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_cursor() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64(42);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.copy_to_bytes(2).to_vec(), b"hi");
        assert!(b.is_empty());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let tail = b.slice(0..b.len() - 1);
        assert_eq!(tail.len(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }

    #[test]
    fn slice_cursor_and_vec_builder_roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u16(0x0102);
        out.put_u8(9);
        out.put_u64(u64::MAX - 1);
        out.put_slice(&[0xAA]);
        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.remaining(), 12);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.get_u64(), u64::MAX - 1);
        assert_eq!(cursor.chunk(), &[0xAA]);
        cursor.advance(1);
        assert!(cursor.is_empty());
        // The cursor advanced over the original slice without copying it.
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn try_get_reports_underflow_without_advancing() {
        let mut cursor: &[u8] = &[1, 2, 3];
        assert_eq!(
            cursor.try_get_u32(),
            Err(TryGetError {
                requested: 4,
                available: 3,
            })
        );
        // The failed read left the cursor in place; a fitting read succeeds.
        assert_eq!(cursor.try_get_u16(), Ok(0x0102));
        assert_eq!(cursor.try_get_u8(), Ok(3));
        assert_eq!(
            cursor.try_get_u8(),
            Err(TryGetError {
                requested: 1,
                available: 0,
            })
        );
        assert!(!TryGetError {
            requested: 8,
            available: 0,
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn bytes_cursor_supports_the_extended_surface() {
        let mut buf = BytesMut::new();
        buf.put_u16(7);
        let mut b = buf.freeze();
        assert_eq!(b.chunk(), &[0, 7]);
        assert_eq!(b.try_get_u16(), Ok(7));
        assert_eq!(
            b.try_get_u64(),
            Err(TryGetError {
                requested: 8,
                available: 0,
            })
        );
    }
}
