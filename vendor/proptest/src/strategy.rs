//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use. No shrinking: strategies only generate.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, retrying with fresh draws.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`"; created by [`crate::prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
