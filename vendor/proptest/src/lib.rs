//! Offline stub of the [`proptest`](https://proptest-rs.github.io/proptest)
//! property-testing framework.
//!
//! Covers the subset this workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`Just`], [`any`], integer/float range
//! strategies, tuple strategies, and [`collection::vec`].
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs unshrunk), and generation is deterministic — every test
//! function derives its RNG seed from its own name, so failures reproduce
//! exactly run-to-run.

pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Derives a seed from a test name so each test gets its own stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next uniformly distributed `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniformly distributed value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0) is empty");
            self.next_u64() % bound
        }

        /// Returns a uniformly distributed `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                start: r.start,
                end_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end_exclusive - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait backing [`crate::prelude::any`].

    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file normally imports.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Returns the canonical strategy for "any value of type `T`".
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Declares property-based tests; each function becomes a `#[test]` that
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=16).prop_flat_map(|w| (Just(w), 0u64..(1u64 << w)))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 5u64..=9, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_respects_dependency((w, bits) in pair()) {
            prop_assert!((1..=16).contains(&w));
            prop_assert!(bits < (1u64 << w));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_applies_function(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_parses(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u64>(), 1..50);
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..20 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
