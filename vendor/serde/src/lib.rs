//! Offline stub of the [`serde`](https://serde.rs) crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a forward
//! declaration of serializability — nothing actually serializes through serde
//! yet (trace I/O has its own text/binary codecs). This stub therefore
//! provides marker traits that every type implements, plus no-op derive
//! macros, so the derives compile and the real serde can be dropped in later
//! without touching the code that carries the derives.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
