//! No-op `Serialize`/`Deserialize` derive macros for the offline serde stub.
//!
//! The companion `serde` stub gives every type a blanket impl of its marker
//! traits, so these derives have nothing to emit. They still register the
//! `#[serde(...)]` helper attribute so annotated fields keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
