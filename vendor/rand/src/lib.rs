//! Offline stub of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the subset of the rand 0.8 API that this workspace uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//! `StdRng` is a SplitMix64 generator — deterministic per seed, but its
//! stream differs from the upstream ChaCha-based `StdRng`.

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the stub's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((u128::standard_sample(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((u128::standard_sample(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform/standard distribution.
    ///
    /// Identical to [`Rng::random`]; kept for rand-0.8 API compatibility. The
    /// name `gen` becomes a reserved keyword in edition 2024, so workspace
    /// code calls `random` instead.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples a value of type `T` from the uniform/standard distribution.
    ///
    /// The edition-2024-safe spelling of [`Rng::gen`] (matching the rand 0.9
    /// rename); both draw from the same stream.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it into a full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
            sm = splitmix64(sm);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (SplitMix64 in this stub).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes).rotate_left(17);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn random_is_an_alias_for_gen() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            assert_eq!(a.random::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
