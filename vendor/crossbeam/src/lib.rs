//! Offline stub of the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the subset this workspace uses: [`scope`] for structured
//! fork/join parallelism and [`channel`] for unbounded MPMC-ish channels.
//!
//! `scope` is implemented over [`std::thread::scope`]. One behavioural
//! difference: if a worker thread panics, the panic propagates out of
//! [`scope`] directly instead of being returned as `Err` — callers that
//! `.expect()` the result observe the same test failure either way.

use std::thread::ScopedJoinHandle;

/// A handle for spawning scoped worker threads, mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` so workers can
    /// spawn further workers, matching the crossbeam signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack frame
/// can be spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel. Cloneable like crossbeam's
    /// receiver; clones share one underlying queue.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.lock().expect("channel lock poisoned").recv()
        }

        /// Iterates over messages until all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Returns a message if one is ready right now.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("channel lock poisoned").try_recv()
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let (tx, rx) = channel::unbounded();
        super::scope(|scope| {
            for (i, &x) in data.iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    tx.send((i, x * 10)).expect("receiver alive");
                });
            }
            drop(tx);
        })
        .expect("no panics");
        let mut got: Vec<(usize, u64)> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let result = super::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("no panics");
        assert_eq!(result, 42);
    }
}
