//! Offline stub of the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the subset this workspace uses: [`scope`] for structured
//! fork/join parallelism and [`channel`] for unbounded and bounded MPMC-ish
//! channels (`unbounded`, `bounded`, `try_send`, `recv_timeout` — the
//! primitives the serving layer's worker pool drains its request queue with).
//!
//! `scope` is implemented over [`std::thread::scope`]. One behavioural
//! difference: if a worker thread panics, the panic propagates out of
//! [`scope`] directly instead of being returned as `Err` — callers that
//! `.expect()` the result observe the same test failure either way.

use std::thread::ScopedJoinHandle;

/// A handle for spawning scoped worker threads, mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` so workers can
    /// spawn further workers, matching the crossbeam signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack frame
/// can be spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer channels, mirroring `crossbeam::channel`: [`unbounded`] and
/// [`bounded`] construction, blocking/non-blocking/timed sends and receives.
/// Error types are re-exported from `std::sync::mpsc`, whose variants match
/// the crossbeam ones this workspace uses.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// The two underlying queue flavours behind one `Sender` type, mirroring
    /// crossbeam's single sender for bounded and unbounded channels.
    enum SendFlavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SendFlavor<T> {
        fn clone(&self) -> Self {
            match self {
                SendFlavor::Unbounded(tx) => SendFlavor::Unbounded(tx.clone()),
                SendFlavor::Bounded(tx) => SendFlavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel ([`unbounded`] or [`bounded`]).
    pub struct Sender<T>(SendFlavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match &self.0 {
                SendFlavor::Unbounded(_) => "Sender { flavor: Unbounded }",
                SendFlavor::Bounded(_) => "Sender { flavor: Bounded }",
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full; fails
        /// only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SendFlavor::Unbounded(tx) => tx.send(value),
                SendFlavor::Bounded(tx) => tx.send(value),
            }
        }

        /// Sends without blocking: fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity (an unbounded channel is never
        /// full) and [`TrySendError::Disconnected`] when all receivers are
        /// gone; the message is handed back inside the error either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SendFlavor::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                SendFlavor::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    /// The receiving half of a channel. Cloneable like crossbeam's receiver;
    /// clones share one underlying queue.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("channel lock poisoned").recv()
        }

        /// Blocks until a message arrives, all senders are gone, or `timeout`
        /// elapses — how a serving client bounds its wait for a reply.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .expect("channel lock poisoned")
                .recv_timeout(timeout)
        }

        /// Iterates over messages until all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Returns a message if one is ready right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("channel lock poisoned").try_recv()
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(SendFlavor::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Creates a bounded channel holding at most `capacity` queued messages.
    /// [`Sender::send`] blocks while the channel is full; [`Sender::try_send`]
    /// fails instead. As in crossbeam, `capacity` 0 gives a rendezvous
    /// channel (every send blocks until a receiver takes the message).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            Sender(SendFlavor::Bounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let (tx, rx) = channel::unbounded();
        super::scope(|scope| {
            for (i, &x) in data.iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    tx.send((i, x * 10)).expect("receiver alive");
                });
            }
            drop(tx);
        })
        .expect("no panics");
        let mut got: Vec<(usize, u64)> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).expect("capacity 2, empty");
        tx.try_send(2).expect("capacity 2, one queued");
        match tx.try_send(3) {
            Err(channel::TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        // A slot freed up, so try_send succeeds again.
        tx.try_send(3).expect("slot freed");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_send_blocks_until_a_receiver_drains() {
        let (tx, rx) = channel::bounded(1);
        tx.send(10u64).expect("first send fits");
        let handle = std::thread::spawn(move || {
            // Blocks until the main thread receives the first message.
            tx.send(20).expect("receiver alive");
        });
        assert_eq!(rx.recv(), Ok(10));
        assert_eq!(rx.recv(), Ok(20));
        handle.join().expect("sender thread");
    }

    #[test]
    fn recv_timeout_times_out_then_receives() {
        use std::time::Duration;
        let (tx, rx) = channel::bounded::<u32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).expect("receiver alive");
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_on_disconnected_channels_returns_the_message() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        match tx.try_send(5) {
            Err(channel::TrySendError::Disconnected(v)) => assert_eq!(v, 5),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        let (tx, rx) = channel::unbounded();
        tx.try_send(6).expect("unbounded is never full");
        assert_eq!(rx.recv(), Ok(6));
        drop(rx);
        match tx.try_send(7) {
            Err(channel::TrySendError::Disconnected(v)) => assert_eq!(v, 7),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn bounded_channel_works_across_cloned_senders_and_receivers() {
        let (tx, rx) = channel::bounded(8);
        let workers: Vec<_> = (0..4u64)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).expect("receiver alive"))
            })
            .collect();
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for w in workers {
            w.join().expect("worker");
        }
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let result = super::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("no panics");
        assert_eq!(result, 42);
    }
}
