//! Umbrella crate for the XOR-indexing reproduction.
//!
//! This crate re-exports the individual workspace crates under one roof so the
//! examples and integration tests can use a single dependency. Library users
//! should normally depend on the individual crates ([`xorindex`], [`cache_sim`],
//! [`memtrace`], [`workloads`], [`gf2`], [`experiments`], [`xorindex_serve`],
//! [`xorindex_verify`]) directly.
//!
//! # Quick start
//!
//! ```
//! use xorindex_repro::prelude::*;
//!
//! // A power-of-two strided trace that thrashes a 1 KB direct-mapped cache.
//! let trace = memtrace::generators::StridedGenerator::new(0, 1024, 512, 4).generate();
//! let cache = CacheConfig::paper_cache(1);
//!
//! let optimizer = Optimizer::builder()
//!     .cache(cache)
//!     .hashed_bits(16)
//!     .function_class(FunctionClass::permutation_based(2))
//!     .revert_if_worse(true)
//!     .build();
//! let outcome = optimizer.optimize(trace.data_block_addresses(cache.block_bits()));
//! assert!(outcome.optimized_stats.misses <= outcome.baseline_stats.misses);
//! ```

pub use cache_sim;
pub use experiments;
pub use gf2;
pub use memtrace;
pub use workloads;
pub use xorindex;
pub use xorindex_serve;
pub use xorindex_verify;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use cache_sim::{
        AccessOutcome, BlockAddr, Cache, CacheConfig, CacheStats, FullyAssociativeCache,
        IndexFunction, ModuloIndex, XorIndex,
    };
    pub use gf2::{BitMatrix, BitVec, Subspace};
    pub use memtrace::{AccessKind, Trace, TraceBuilder, TraceRecord};
    pub use workloads::{Scale, Workload, WorkloadSuite};
    pub use xorindex::{
        ConflictProfile, EvaluationReport, FrozenKernel, FunctionClass, HashFunction,
        MissEstimator, Optimizer, SearchAlgorithm, ShardedMemo,
    };
    pub use xorindex_serve::{IndexService, Registration, Request, Response, WorkerPool};
    pub use xorindex_verify::{EstimateAudit, SimStats, TraceReplayer, VerifiedOutcome};
}
